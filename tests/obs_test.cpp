// Tests for the observability layer (src/obs): histogram percentiles,
// registry determinism, trace ring buffer, JSON building, bench reports,
// and the no-op safety of the PBC_OBS_* macros.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pbc::obs {
namespace {

// --- Histogram -------------------------------------------------------------

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.P50(), 0u);
  EXPECT_EQ(h.P99(), 0u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  // Values below kSubBuckets land in unit-width buckets.
  Histogram h;
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) h.Record(v);
  EXPECT_EQ(h.count(), Histogram::kSubBuckets);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), Histogram::kSubBuckets - 1);
  EXPECT_EQ(h.P50(), 3u);  // rank 4 of 8 → value 3, exact bucket
}

TEST(HistogramTest, PercentilesOnUniformRange) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  // Log-linear buckets have <= 12.5% relative error, and Quantile reports
  // the bucket's upper bound, so p >= true value and p <= 1.125 * true.
  struct {
    double q;
    uint64_t truth;
  } cases[] = {{0.50, 500}, {0.95, 950}, {0.99, 990}};
  for (const auto& c : cases) {
    uint64_t got = h.Quantile(c.q);
    EXPECT_GE(got, c.truth) << "q=" << c.q;
    EXPECT_LE(got, static_cast<uint64_t>(1.125 * c.truth) + 1)
        << "q=" << c.q;
  }
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
}

TEST(HistogramTest, QuantileNeverExceedsObservedMax) {
  Histogram h;
  h.Record(1000);  // single sample; bucket upper bound overshoots 1000
  EXPECT_EQ(h.P50(), 1000u);
  EXPECT_EQ(h.P99(), 1000u);
}

TEST(HistogramTest, NonEmptyBucketsAscending) {
  Histogram h;
  h.Record(3);
  h.Record(100);
  h.Record(100);
  h.Record(50000);
  auto buckets = h.NonEmptyBuckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_LT(buckets[0].first, buckets[1].first);
  EXPECT_LT(buckets[1].first, buckets[2].first);
  EXPECT_EQ(buckets[0].second, 1u);
  EXPECT_EQ(buckets[1].second, 2u);
}

// --- Counters / gauges / registry ------------------------------------------

TEST(MetricsRegistryTest, CountersAndGauges) {
  MetricsRegistry reg;
  reg.GetCounter("a")->Add(5);
  reg.GetCounter("a")->Increment();
  reg.GetGauge("depth")->Set(7);
  reg.GetGauge("depth")->Set(3);
  EXPECT_EQ(reg.CounterValue("a"), 6u);
  EXPECT_EQ(reg.CounterValue("never-touched"), 0u);
  EXPECT_EQ(reg.FindCounter("never-touched"), nullptr);
  EXPECT_EQ(reg.FindGauge("depth")->value(), 3);
  EXPECT_EQ(reg.FindGauge("depth")->max(), 7);
}

TEST(MetricsRegistryTest, DebugStringSortedAndStable) {
  MetricsRegistry a, b;
  // Populate in different orders; std::map keys make dumps identical.
  a.GetCounter("x")->Add(1);
  a.GetCounter("b")->Add(2);
  b.GetCounter("b")->Add(2);
  b.GetCounter("x")->Add(1);
  EXPECT_EQ(a.DebugString(), b.DebugString());
  EXPECT_NE(a.DebugString().find("counter b 2"), std::string::npos);
}

// --- TraceLog --------------------------------------------------------------

TEST(TraceLogTest, SnapshotPreservesOrder) {
  TraceLog log(16);
  for (uint64_t t = 0; t < 10; ++t) {
    log.Record(t * 100, TraceKind::kSend, 0, 1, "ping", t);
  }
  auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at_us, i * 100);
    EXPECT_EQ(events[i].arg, i);
  }
}

TEST(TraceLogTest, RingBufferKeepsNewestInOrder) {
  TraceLog log(4);
  for (uint64_t t = 0; t < 10; ++t) {
    log.Record(t, TraceKind::kSend, 0, 1, "ping", t);
  }
  EXPECT_EQ(log.recorded(), 10u);
  EXPECT_EQ(log.size(), 4u);
  auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first chronological order of the retained tail: 6, 7, 8, 9.
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].arg, 6 + i);
}

TEST(TraceLogTest, ZeroCapacityRecordsNothing) {
  TraceLog log(0);
  log.Record(1, TraceKind::kSend, 0, 1, "ping", 0);
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(TraceLogTest, DumpContainsKindNames) {
  TraceLog log(8);
  log.Record(42, TraceKind::kDrop, 3, 4, "vote", 9);
  std::string dump = log.DumpString();
  EXPECT_NE(dump.find("drop"), std::string::npos);
  EXPECT_NE(dump.find("vote"), std::string::npos);
  EXPECT_NE(dump.find("42"), std::string::npos);
}

// --- Json ------------------------------------------------------------------

TEST(JsonTest, ObjectKeepsInsertionOrderAndOverwrites) {
  Json j = Json::Object();
  j.Set("z", 1);
  j.Set("a", 2);
  j.Set("z", 3);  // overwrite in place, order unchanged
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.object()[0].first, "z");
  EXPECT_EQ(j.object()[0].second.number(), 3);
  EXPECT_EQ(j.object()[1].first, "a");
  EXPECT_EQ(j.Dump(), "{\n  \"z\": 3,\n  \"a\": 2\n}");
}

TEST(JsonTest, EscapesStrings) {
  Json j = Json::Object();
  j.Set("k", "a\"b\\c\n");
  EXPECT_NE(j.Dump().find("a\\\"b\\\\c\\n"), std::string::npos);
}

TEST(JsonTest, NumbersIntegersStayIntegral) {
  Json j = Json::Array();
  j.Push(uint64_t{12345});
  j.Push(0.5);
  j.Push(true);
  std::string s = j.Dump();
  EXPECT_NE(s.find("12345"), std::string::npos);
  EXPECT_EQ(s.find("12345.0"), std::string::npos);
  EXPECT_NE(s.find("0.5"), std::string::npos);
  EXPECT_NE(s.find("true"), std::string::npos);
}

// --- BenchReport -----------------------------------------------------------

TEST(BenchReportTest, StandardMetricsSchema) {
  Histogram lat;
  for (uint64_t v = 100; v <= 200; v += 10) lat.Record(v);
  Json extra = Json::Object();
  extra.Set("note", "x");
  Json m = BenchReport::StandardMetrics(123.5, lat, 42, std::move(extra));
  EXPECT_TRUE(m.Has("throughput_txn_per_s"));
  EXPECT_TRUE(m.Has("commit_latency_p50_us"));
  EXPECT_TRUE(m.Has("commit_latency_p95_us"));
  EXPECT_TRUE(m.Has("commit_latency_p99_us"));
  EXPECT_TRUE(m.Has("messages_sent"));
  EXPECT_TRUE(m.Has("note"));
  EXPECT_EQ(m.At("messages_sent").number(), 42);
}

TEST(BenchReportTest, AddSeriesOverwritesByName) {
  BenchReport report;
  report.Configure("t", 1, Json::Object());
  Json m1 = Json::Object();
  m1.Set("v", 1);
  Json m2 = Json::Object();
  m2.Set("v", 2);
  report.AddSeries("s", Json::Object(), std::move(m1));
  report.AddSeries("s", Json::Object(), std::move(m2));
  Json built = report.Build();
  ASSERT_EQ(built.At("series").size(), 1u);
  EXPECT_EQ(built.At("series").array()[0].At("metrics").At("v").number(), 2);
}

TEST(BenchReportTest, BuildCarriesBenchSeedConfig) {
  BenchReport report;
  Json cfg = Json::Object();
  cfg.Set("n", 4);
  report.Configure("mybench", 77, std::move(cfg));
  Json built = report.Build();
  EXPECT_EQ(built.At("bench").str(), "mybench");
  EXPECT_EQ(built.At("seed").number(), 77);
  EXPECT_EQ(built.At("config").At("n").number(), 4);
}

// --- PBC_OBS_* macros ------------------------------------------------------

TEST(ObsMacrosTest, NullRegistryAndTraceAreSafe) {
  MetricsRegistry* reg = nullptr;
  TraceLog* trace = nullptr;
  PBC_OBS_COUNT(reg, "x", 1);
  PBC_OBS_GAUGE_SET(reg, "g", 2);
  PBC_OBS_HIST_RECORD(reg, "h", 3);
  PBC_OBS_TRACE(trace, 0, TraceKind::kSend, 0, 1, "m", 0);
  MetricsRegistry real;
  PBC_OBS_COUNT(&real, "x", 5);
#if PBC_OBS_ENABLED
  EXPECT_EQ(real.CounterValue("x"), 5u);
#else
  EXPECT_EQ(real.CounterValue("x"), 0u);
#endif
}

// --- End-to-end determinism through the simulator --------------------------

struct ObsPingMsg : sim::Message {
  const char* type() const override { return "obs-ping"; }
};

class SinkNode : public sim::Node {
 public:
  SinkNode(sim::NodeId id, sim::Network* net) : Node(id, net) {}
  void OnMessage(sim::NodeId, const sim::MessagePtr&) override { ++got; }
  int got = 0;
};

// Runs a small lossy, jittery simulation with metrics + trace attached and
// returns (registry dump, trace dump). Two same-seed runs must match
// byte-for-byte; a different seed must diverge.
std::pair<std::string, std::string> RunInstrumented(uint64_t seed) {
  sim::Simulator simulator(seed);
  sim::Network net(&simulator);
  MetricsRegistry metrics;
  TraceLog trace(1024);
  net.AttachObs(&metrics, &trace);
  simulator.AttachMetrics(&metrics);
  net.SetDefaultLatency({100, 80});
  net.SetDropRate(0.2);
  SinkNode a(0, &net), b(1, &net), c(2, &net);
  net.Start();
  for (int i = 0; i < 100; ++i) {
    net.Send(0, 1, std::make_shared<ObsPingMsg>());
    net.Send(1, 2, std::make_shared<ObsPingMsg>());
  }
  simulator.Schedule(50, [&] { net.Crash(2); });
  simulator.Schedule(5000, [&] { net.Recover(2); });
  simulator.RunAll();
  return {metrics.DebugString(), trace.DumpString()};
}

TEST(ObsDeterminismTest, SameSeedSameMetricsAndTrace) {
  auto r1 = RunInstrumented(1234);
  auto r2 = RunInstrumented(1234);
  EXPECT_EQ(r1.first, r2.first);
  EXPECT_EQ(r1.second, r2.second);
#if PBC_OBS_ENABLED
  EXPECT_FALSE(r1.first.empty());
#endif
}

#if PBC_OBS_ENABLED
TEST(ObsDeterminismTest, DifferentSeedDiverges) {
  auto r1 = RunInstrumented(1);
  auto r2 = RunInstrumented(2);
  // Jitter + drops depend on the seed, so the dumps should differ.
  EXPECT_NE(r1.first + r1.second, r2.first + r2.second);
}
#endif

TEST(ObsNetworkTest, TraceTimestampsNonDecreasing) {
  sim::Simulator simulator(7);
  sim::Network net(&simulator);
  TraceLog trace(256);
  net.AttachObs(nullptr, &trace);
  net.SetDefaultLatency({100, 50});
  SinkNode a(0, &net), b(1, &net);
  net.Start();
  for (int i = 0; i < 20; ++i) net.Send(0, 1, std::make_shared<ObsPingMsg>());
  simulator.RunAll();
#if PBC_OBS_ENABLED
  auto events = trace.Snapshot();
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].at_us, events[i - 1].at_us);
  }
  // Sends precede deliveries of the same pair count.
  size_t sends = 0, delivers = 0;
  for (const auto& ev : events) {
    if (ev.kind == TraceKind::kSend) ++sends;
    if (ev.kind == TraceKind::kDeliver) ++delivers;
  }
  EXPECT_EQ(sends, 20u);
  EXPECT_EQ(delivers, 20u);
#endif
}

TEST(ObsNetworkTest, PerTypeAndPerLinkCounters) {
  sim::Simulator simulator(3);
  sim::Network net(&simulator);
  MetricsRegistry metrics;
  net.AttachObs(&metrics, nullptr);
  SinkNode a(0, &net), b(1, &net);
  net.Start();
  for (int i = 0; i < 5; ++i) net.Send(0, 1, std::make_shared<ObsPingMsg>());
  simulator.RunAll();
#if PBC_OBS_ENABLED
  EXPECT_EQ(metrics.CounterValue("net.sent"), 5u);
  EXPECT_EQ(metrics.CounterValue("net.sent.obs-ping"), 5u);
  EXPECT_EQ(metrics.CounterValue("net.link.0->1.sent"), 5u);
  EXPECT_EQ(metrics.CounterValue("net.delivered"), 5u);
#endif
}

}  // namespace
}  // namespace pbc::obs
