// Unit tests for the simulation-testing subsystem (src/check): each
// invariant checker against a deliberately broken fake system-under-test,
// nemesis generation/shrinking, run determinism, the quorum-mutation
// canary, and replay of the committed seed corpus (tests/seeds.txt).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "check/harness.h"
#include "check/invariants.h"
#include "check/nemesis.h"
#include "check/runner.h"
#include "ledger/block.h"
#include "ledger/chain.h"
#include "seed_corpus.h"

namespace pbc::check {
namespace {

txn::Transaction KvTxn(txn::TxnId id) {
  txn::Transaction t;
  t.id = id;
  t.ops.push_back(txn::Op::Write("k" + std::to_string(id % 7), "v"));
  return t;
}

// A fake "replica set": hand-built chains a broken implementation might
// produce. Appends one block per call, chaining correctly.
void AppendBlock(ledger::Chain* chain, std::vector<txn::Transaction> txns) {
  ASSERT_TRUE(chain
                  ->Append(ledger::Block::Make(chain->height(),
                                               chain->TipHash(),
                                               std::move(txns)))
                  .ok());
}

std::vector<Violation> RunChecker(InvariantChecker* checker) {
  std::vector<Violation> out;
  checker->Check(/*now=*/123, &out);
  return out;
}

// --- Invariant checkers vs broken fakes ------------------------------------

TEST(ChainAgreementCheckerTest, AcceptsConsistentPrefixes) {
  ledger::Chain a, b;
  AppendBlock(&a, {KvTxn(1)});
  AppendBlock(&a, {KvTxn(2)});
  AppendBlock(&b, {KvTxn(1)});  // b is one block behind — still a prefix
  ChainAgreementChecker checker([&] {
    return std::vector<const ledger::Chain*>{&a, &b};
  });
  EXPECT_TRUE(RunChecker(&checker).empty());
}

TEST(ChainAgreementCheckerTest, CatchesForkedReplicas) {
  ledger::Chain a, b;
  AppendBlock(&a, {KvTxn(1)});
  AppendBlock(&b, {KvTxn(2)});  // same height, different block: a fork
  ChainAgreementChecker checker([&] {
    return std::vector<const ledger::Chain*>{&a, &b};
  });
  std::vector<Violation> found = RunChecker(&checker);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].invariant, std::string("chain-agreement"));
  EXPECT_EQ(found[0].at, 123u);
}

TEST(ChainLinkageCheckerTest, CatchesTamperedBlock) {
  ledger::Chain good, bad;
  AppendBlock(&good, {KvTxn(1)});
  AppendBlock(&bad, {KvTxn(1)});
  AppendBlock(&bad, {KvTxn(2)});
  // Tamper with history behind the chain's back: the Merkle root in the
  // stored header no longer matches the transactions.
  bad.MutableBlockForTest(0)->txns.push_back(KvTxn(99));
  ChainLinkageChecker checker([&] {
    return std::vector<const ledger::Chain*>{&good, &bad};
  });
  std::vector<Violation> found = RunChecker(&checker);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0].detail.find("replica 1"), std::string::npos);
  EXPECT_FALSE(checker.periodic());  // full audits are final-only
}

TEST(CommitValidityCheckerTest, CatchesForeignAndDuplicateTxns) {
  ledger::Chain chain;
  AppendBlock(&chain, {KvTxn(1), KvTxn(2)});
  AppendBlock(&chain, {KvTxn(99), KvTxn(2)});  // 99 foreign, 2 duplicated
  CommitValidityChecker checker(
      [&] { return std::vector<const ledger::Chain*>{&chain}; },
      [](txn::TxnId id) { return id >= 1 && id <= 10; });
  std::vector<Violation> found = RunChecker(&checker);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_NE(found[0].detail.find("never submitted"), std::string::npos);
  EXPECT_NE(found[1].detail.find("more than once"), std::string::npos);
}

TEST(KvModelCheckerTest, AcceptsIdenticalOrders) {
  KvModelChecker checker;
  for (size_t replica = 0; replica < 3; ++replica) {
    checker.OnCommit(replica, KvTxn(1), 10);
    checker.OnCommit(replica, KvTxn(2), 20);
  }
  EXPECT_TRUE(RunChecker(&checker).empty());
  EXPECT_EQ(checker.canonical_length(), 2u);
}

TEST(KvModelCheckerTest, CatchesDivergentCommitOrder) {
  KvModelChecker checker;
  checker.OnCommit(0, KvTxn(1), 10);
  checker.OnCommit(0, KvTxn(2), 20);
  checker.OnCommit(1, KvTxn(2), 30);  // position 0 holds txn 1, not 2
  std::vector<Violation> found = RunChecker(&checker);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].invariant, std::string("kv-linearizability"));
  // Violations are drained once reported.
  EXPECT_TRUE(RunChecker(&checker).empty());
}

TEST(BalanceConservationCheckerTest, CatchesLeakOnlyWhenSettled) {
  int64_t total = 0;
  bool settled = false;
  BalanceConservationChecker checker([&] { return total; }, int64_t{0},
                                     [&] { return settled; });
  total = 5;  // money appeared from nowhere
  EXPECT_TRUE(RunChecker(&checker).empty());  // gated: not settled yet
  settled = true;
  std::vector<Violation> found = RunChecker(&checker);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0].detail.find("5"), std::string::npos);
  total = 0;
  EXPECT_TRUE(RunChecker(&checker).empty());
}

TEST(TokenNoDoubleSpendCheckerTest, CatchesSecondAcceptance) {
  TokenNoDoubleSpendChecker checker;
  crypto::Hash256 serial = crypto::Sha256::Digest(std::string("token-1"));
  checker.OnSpend(serial, /*accepted=*/true, 10);
  checker.OnSpend(serial, /*accepted=*/false, 20);  // rejected retry: fine
  EXPECT_TRUE(RunChecker(&checker).empty());
  checker.OnSpend(serial, /*accepted=*/true, 30);  // double spend
  std::vector<Violation> found = RunChecker(&checker);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].invariant, std::string("token-no-double-spend"));
  EXPECT_EQ(checker.accepted_spends(), 1u);
}

TEST(CrossShardAtomicityCheckerTest, CatchesCommitAbortSplit) {
  CrossShardAtomicityChecker checker;
  checker.ExpectOutcomes(7, /*involved_clusters=*/2);
  checker.OnShardOutcome(0, 7, /*commit=*/true, 10);
  EXPECT_FALSE(checker.AllDecided());
  checker.OnShardOutcome(1, 7, /*commit=*/false, 20);  // sibling aborts
  EXPECT_TRUE(checker.AllDecided());
  std::vector<Violation> found = RunChecker(&checker);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0].detail.find("txn 7"), std::string::npos);
}

TEST(CheckerSuiteTest, CapsViolationsPerInvariant) {
  sim::Simulator sim(1);
  CheckerSuite suite(&sim);
  int64_t total = 1;  // permanently broken
  suite.Add(std::make_unique<BalanceConservationChecker>(
      [&] { return total; }, int64_t{0}));
  for (size_t i = 0; i < CheckerSuite::kMaxViolationsPerInvariant + 5; ++i) {
    suite.RunPeriodic();
  }
  EXPECT_EQ(suite.violations().size(),
            CheckerSuite::kMaxViolationsPerInvariant);
  EXPECT_EQ(suite.coverage().at("balance-conservation"),
            CheckerSuite::kMaxViolationsPerInvariant + 5);
}

// --- Nemesis ----------------------------------------------------------------

TEST(NemesisProfileTest, ParsesAndRoundTrips) {
  NemesisProfile p;
  ASSERT_TRUE(NemesisProfile::Parse("partition,crash", &p));
  EXPECT_TRUE(p.crash);
  EXPECT_TRUE(p.partition);
  EXPECT_FALSE(p.delay);
  EXPECT_EQ(p.ToString(), "crash,partition");  // canonical order
  ASSERT_TRUE(NemesisProfile::Parse("none", &p));
  EXPECT_EQ(p.ToString(), "none");
  EXPECT_FALSE(NemesisProfile::Parse("crash,meteor", &p));
}

NemesisTopology FourNodeTopology() {
  NemesisTopology topo;
  topo.groups.push_back({{0, 1, 2, 3}, /*max_faulty=*/1});
  topo.all_nodes = {0, 1, 2, 3};
  topo.supports_byzantine = true;
  return topo;
}

TEST(NemesisScheduleTest, GenerationIsDeterministic) {
  NemesisProfile p;
  ASSERT_TRUE(NemesisProfile::Parse("crash,partition,delay,byzantine", &p));
  NemesisTopology topo = FourNodeTopology();
  NemesisSchedule a = NemesisSchedule::Generate(p, topo, 60'000'000, 42);
  NemesisSchedule b = NemesisSchedule::Generate(p, topo, 60'000'000, 42);
  EXPECT_EQ(a.Describe(), b.Describe());
  NemesisSchedule c = NemesisSchedule::Generate(p, topo, 60'000'000, 43);
  EXPECT_NE(a.Describe(), c.Describe());
}

TEST(NemesisScheduleTest, WindowsFilterToWellFormedSubsets) {
  NemesisProfile p;
  ASSERT_TRUE(NemesisProfile::Parse("crash,partition", &p));
  NemesisSchedule full =
      NemesisSchedule::Generate(p, FourNodeTopology(), 60'000'000, 7);
  std::vector<uint64_t> windows = full.WindowIds();
  ASSERT_FALSE(windows.empty());
  // Keeping only the first window keeps exactly its paired events.
  NemesisSchedule one = full.Filtered({windows[0]});
  ASSERT_FALSE(one.empty());
  for (const NemesisEvent& ev : one.events()) {
    EXPECT_EQ(ev.window, windows[0]);
  }
  EXPECT_TRUE(full.Filtered({}).empty());
}

TEST(NemesisScheduleTest, RespectsCrashBudgetAndNeverCrashList) {
  NemesisProfile p;
  ASSERT_TRUE(NemesisProfile::Parse("crash", &p));
  NemesisTopology topo = FourNodeTopology();
  topo.never_crash = {3};
  for (uint64_t seed = 0; seed < 20; ++seed) {
    NemesisSchedule s = NemesisSchedule::Generate(p, topo, 60'000'000, seed);
    int down = 0;
    for (const NemesisEvent& ev : s.events()) {
      if (ev.kind == NemesisKind::kCrash) {
        EXPECT_NE(ev.node, 3u) << "seed=" << seed;
        ++down;
        EXPECT_LE(down, 1) << "seed=" << seed;  // group budget is f=1
      } else if (ev.kind == NemesisKind::kRecover) {
        --down;
      }
    }
    EXPECT_EQ(down, 0) << "seed=" << seed;  // every crash recovers
  }
}

TEST(ShrinkWindowsTest, FindsMinimalCulpritPair) {
  std::vector<uint64_t> windows;
  for (uint64_t i = 1; i <= 10; ++i) windows.push_back(i);
  size_t calls = 0;
  auto needs_3_and_7 = [&calls](const std::vector<uint64_t>& ws) {
    ++calls;
    bool has3 = false, has7 = false;
    for (uint64_t w : ws) {
      if (w == 3) has3 = true;
      if (w == 7) has7 = true;
    }
    return has3 && has7;
  };
  std::vector<uint64_t> minimal = ShrinkWindows(windows, needs_3_and_7);
  EXPECT_EQ(minimal, (std::vector<uint64_t>{3, 7}));
  EXPECT_LE(calls, 64u);
}

TEST(ShrinkWindowsTest, EmptyWhenFailureNeedsNoFaults) {
  std::vector<uint64_t> minimal = ShrinkWindows(
      {1, 2, 3}, [](const std::vector<uint64_t>&) { return true; });
  EXPECT_TRUE(minimal.empty());
}

// --- Harness determinism ----------------------------------------------------

TEST(HarnessTest, SameSeedSameRun) {
  RunConfig cfg;
  cfg.protocol = "pbft";
  cfg.nemesis = "crash,partition";
  cfg.seed = 5;
  cfg.txns = 15;
  RunResult a = RunOne(cfg);
  RunResult b = RunOne(cfg);
  EXPECT_EQ(a.live, b.live);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.sim_end_us, b.sim_end_us);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.schedule.Describe(), b.schedule.Describe());
}

TEST(HarnessTest, DistinctSeedsDiverge) {
  RunConfig cfg;
  cfg.protocol = "pbft";
  cfg.nemesis = "crash";
  cfg.txns = 15;
  cfg.seed = 0;
  RunResult a = RunOne(cfg);
  cfg.seed = 1;
  RunResult b = RunOne(cfg);
  EXPECT_NE(a.sim_events, b.sim_events);  // different worlds entirely
}

TEST(HarnessTest, UnknownProtocolReportsConfigViolation) {
  RunConfig cfg;
  cfg.protocol = "pow";
  RunResult r = RunOne(cfg);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].invariant, std::string("config"));
}

// --- Quorum-mutation canary -------------------------------------------------

// A seeded off-by-one in the quorum rule must be caught by the sweep and
// shrink to a minimal schedule that still reproduces deterministically.
// With a 2-of-4 "quorum" the crash,partition profile flushes it out: the
// first reproducing seed needs a crash window to desynchronize a replica
// plus one partition window to split the weakened quorum.
TEST(MutationCanaryTest, BrokenQuorumIsCaughtAndShrinks) {
  SweepOptions options;
  options.protocols = {"pbft"};
  options.nemeses = {"crash,partition"};
  options.seeds = 30;
  options.txns = 20;
  options.quorum_slack = 1;
  SweepReport report = RunSweep(options);
  ASSERT_FALSE(report.failures.empty())
      << "quorum mutation survived the sweep";
  const SweepFailure& failure = report.failures.front();
  EXPECT_FALSE(failure.violations.empty());
  // The shrunk schedule still reproduces the violation when replayed.
  ASSERT_FALSE(failure.shrunk_schedule.empty());
  RunResult replay =
      RunWithSchedule(failure.config, failure.shrunk_schedule);
  EXPECT_FALSE(replay.ok());
  // And shrinking actually ran and converged on a small window set:
  // at most the crash window + the partition window described above.
  EXPECT_GT(failure.shrink_replays, 0u);
  EXPECT_LE(failure.shrunk_windows.size(), 2u);
}

TEST(MutationCanaryTest, HealthyQuorumPassesSameSweep) {
  SweepOptions options;
  options.protocols = {"pbft"};
  options.nemeses = {"crash,partition"};
  options.seeds = 30;
  options.txns = 20;
  SweepReport report = RunSweep(options);
  EXPECT_TRUE(report.ok());
}

// --- Seed corpus ------------------------------------------------------------

// tests/seeds.txt: one "<protocol> <nemesis> <seed> [block=<N>]
// [adversary=<mode>] [skew=<ppm>] [durable=1]" per line (see
// tests/seed_corpus.h for the grammar). Seeds that once found a bug (or
// exercised an interesting schedule) are committed here and replayed on
// every CTest run.
TEST(SeedCorpusTest, ReplaysClean) {
  std::ifstream in(PBC_SEEDS_FILE);
  ASSERT_TRUE(in.is_open()) << "missing " << PBC_SEEDS_FILE;
  std::string line;
  size_t replayed = 0;
  size_t block_mode = 0;
  size_t adaptive = 0;
  size_t skewed = 0;
  size_t durable = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    RunConfig cfg;
    std::string error;
    ASSERT_TRUE(ParseSeedCorpusLine(line, &cfg, &error))
        << error << "\n  corpus line: " << line;
    if (cfg.block_max_txns > 0) ++block_mode;
    if (cfg.adversary != "random") ++adaptive;
    if (cfg.clock_skew_ppm != 0) ++skewed;
    if (cfg.durable) ++durable;
    cfg.txns = 20;
    RunResult result = RunOne(cfg);
    for (const Violation& v : result.violations) {
      ADD_FAILURE() << "[" << v.invariant << "] " << v.detail
                    << "\n  corpus line: " << line
                    << "\n  repro: " << cfg.ReproLine();
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 10u) << "corpus unexpectedly small";
  EXPECT_GE(block_mode, 5u) << "block-pipeline corpus coverage too thin";
  EXPECT_GE(adaptive, 6u) << "adaptive-adversary corpus coverage too thin";
  EXPECT_GE(skewed, 3u) << "clock-skew corpus coverage too thin";
  EXPECT_GE(durable, 8u) << "durable-storage corpus coverage too thin";
}

}  // namespace
}  // namespace pbc::check
