#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/auth.h"
#include "crypto/group.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace pbc::crypto {
namespace {

// --- SHA-256: FIPS 180-4 / NIST CAVS vectors ------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::Digest(std::string("")).ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::Digest(std::string("abc")).ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::Digest(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
                .ToHex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(h.Finalize().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finalize(), Sha256::Digest(msg)) << "split=" << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // 55/56/64 byte messages exercise all padding branches.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Sha256 a;
    a.Update(msg);
    Sha256 b;
    for (char c : msg) b.Update(std::string(1, c));
    EXPECT_EQ(a.Finalize(), b.Finalize()) << "len=" << len;
  }
}

TEST(Hash256Test, ZeroAndOrdering) {
  EXPECT_TRUE(Hash256::Zero().IsZero());
  EXPECT_FALSE(Sha256::Digest(std::string("x")).IsZero());
  Hash256 a = Sha256::Digest(std::string("a"));
  Hash256 b = Sha256::Digest(std::string("b"));
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
}

TEST(Hash256Test, ShortHexIsPrefix) {
  Hash256 h = Sha256::Digest(std::string("hello"));
  EXPECT_EQ(h.ToShortHex(), h.ToHex().substr(0, 8));
}

// --- HMAC-SHA256: RFC 4231 test vectors -----------------------------------

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes msg = ToBytes("Hi There");
  EXPECT_EQ(HmacSha256(key, msg).ToHex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Bytes key = ToBytes("Jefe");
  Bytes msg = ToBytes("what do ya want for nothing?");
  EXPECT_EQ(HmacSha256(key, msg).ToHex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3LongKeyPath) {
  Bytes key(131, 0xaa);  // forces key hashing (key > block size)
  Bytes msg = ToBytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(HmacSha256(key, msg).ToHex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDifferentTags) {
  Bytes msg = ToBytes("payload");
  EXPECT_NE(HmacSha256(ToBytes("k1"), msg), HmacSha256(ToBytes("k2"), msg));
}

// --- Merkle trees ----------------------------------------------------------

std::vector<Hash256> MakeLeaves(size_t n) {
  std::vector<Hash256> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::Digest("leaf-" + std::to_string(i)));
  }
  return leaves;
}

TEST(MerkleTest, EmptyTreeHasZeroRoot) {
  MerkleTree t({});
  EXPECT_TRUE(t.root().IsZero());
}

TEST(MerkleTest, SingleLeafRootIsDomainSeparatedLeafHash) {
  auto leaves = MakeLeaves(1);
  MerkleTree t(leaves);
  EXPECT_EQ(t.root(), MerkleTree::HashLeaf(leaves[0]));
  // Domain separation: root != plain digest of leaf.
  EXPECT_NE(t.root(), leaves[0]);
}

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  auto leaves = MakeLeaves(8);
  MerkleTree t1(leaves);
  leaves[3] = Sha256::Digest(std::string("tampered"));
  MerkleTree t2(leaves);
  EXPECT_NE(t1.root(), t2.root());
}

TEST(MerkleTest, ProofVerifiesForEveryLeafAndSize) {
  for (size_t n = 1; n <= 33; ++n) {
    auto leaves = MakeLeaves(n);
    MerkleTree t(leaves);
    for (size_t i = 0; i < n; ++i) {
      auto proof = t.Prove(i);
      ASSERT_TRUE(proof.ok()) << "n=" << n << " i=" << i;
      EXPECT_TRUE(MerkleTree::Verify(t.root(), leaves[i],
                                     proof.ValueOrDie()))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(MerkleTest, ProofFailsForWrongLeaf) {
  auto leaves = MakeLeaves(10);
  MerkleTree t(leaves);
  auto proof = t.Prove(4).ValueOrDie();
  EXPECT_FALSE(MerkleTree::Verify(t.root(), leaves[5], proof));
  EXPECT_FALSE(MerkleTree::Verify(t.root(),
                                  Sha256::Digest(std::string("other")), proof));
}

TEST(MerkleTest, ProofFailsAgainstWrongRoot) {
  auto leaves = MakeLeaves(10);
  MerkleTree t(leaves);
  auto proof = t.Prove(4).ValueOrDie();
  EXPECT_FALSE(MerkleTree::Verify(Sha256::Digest(std::string("bogus")),
                                  leaves[4], proof));
}

TEST(MerkleTest, ProveOutOfRangeFails) {
  MerkleTree t(MakeLeaves(4));
  EXPECT_FALSE(t.Prove(4).ok());
}

// --- Authentication --------------------------------------------------------

TEST(AuthTest, SignVerifyRoundTrip) {
  KeyRegistry registry;
  PrivateKey key = registry.Register(7);
  Bytes msg = ToBytes("attack at dawn");
  Signature sig = key.Sign(msg);
  EXPECT_EQ(sig.signer, 7u);
  EXPECT_TRUE(registry.Verify(msg, sig));
}

TEST(AuthTest, TamperedMessageFails) {
  KeyRegistry registry;
  PrivateKey key = registry.Register(1);
  Signature sig = key.Sign(ToBytes("original"));
  EXPECT_FALSE(registry.Verify(ToBytes("Original"), sig));
}

TEST(AuthTest, ImpersonationFails) {
  KeyRegistry registry;
  PrivateKey byzantine = registry.Register(1);
  registry.Register(2);
  // Byzantine node 1 claims to be node 2.
  Bytes msg = ToBytes("i am node 2");
  Signature forged = byzantine.Sign(msg);
  forged.signer = 2;
  EXPECT_FALSE(registry.Verify(msg, forged));
}

TEST(AuthTest, UnknownSignerFails) {
  KeyRegistry registry;
  PrivateKey key = registry.Register(1);
  Signature sig = key.Sign(ToBytes("m"));
  sig.signer = 99;
  EXPECT_FALSE(registry.Verify(ToBytes("m"), sig));
}

TEST(AuthTest, DeterministicRegistrationIsReproducible) {
  KeyRegistry r1, r2;
  PrivateKey k1 = r1.RegisterDeterministic(5, 42);
  PrivateKey k2 = r2.RegisterDeterministic(5, 42);
  EXPECT_EQ(k1.secret(), k2.secret());
}

TEST(AuthTest, DigestSigning) {
  KeyRegistry registry;
  PrivateKey key = registry.Register(3);
  Hash256 digest = Sha256::Digest(std::string("block"));
  EXPECT_TRUE(registry.Verify(digest, key.Sign(digest)));
}

// --- Group & Pedersen ------------------------------------------------------

TEST(GroupTest, GeneratorHasOrderQ) {
  // g^q == 1 and g != 1.
  EXPECT_EQ(GroupElement::G().Pow(Scalar(kGroupQ - 1)) * GroupElement::G(),
            GroupElement::Identity());
  EXPECT_NE(GroupElement::G(), GroupElement::Identity());
  EXPECT_EQ(GroupElement::H().Pow(Scalar(kGroupQ - 1)) * GroupElement::H(),
            GroupElement::Identity());
}

TEST(GroupTest, ScalarFieldAxioms) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Scalar a = Scalar::Random(&rng), b = Scalar::Random(&rng),
           c = Scalar::Random(&rng);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + a.Neg(), Scalar(0));
    EXPECT_EQ(a - b, a + b.Neg());
  }
}

TEST(GroupTest, PowHomomorphism) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    Scalar a = Scalar::Random(&rng), b = Scalar::Random(&rng);
    GroupElement g = GroupElement::G();
    EXPECT_EQ(g.Pow(a) * g.Pow(b), g.Pow(a + b));
    EXPECT_EQ(g.Pow(a).Pow(b), g.Pow(a * b));
  }
}

TEST(GroupTest, InverseCancels) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    GroupElement x = GroupElement::G().Pow(Scalar::Random(&rng));
    EXPECT_EQ(x * x.Inverse(), GroupElement::Identity());
  }
}

TEST(PedersenTest, OpenSucceedsWithCorrectOpening) {
  Rng rng(6);
  Scalar m(12345), r = Scalar::Random(&rng);
  auto c = PedersenCommit(m, r);
  EXPECT_TRUE(PedersenOpen(c, m, r));
}

TEST(PedersenTest, OpenFailsWithWrongMessageOrBlinding) {
  Rng rng(7);
  Scalar m(1), r = Scalar::Random(&rng);
  auto c = PedersenCommit(m, r);
  EXPECT_FALSE(PedersenOpen(c, Scalar(2), r));
  EXPECT_FALSE(PedersenOpen(c, m, r + Scalar(1)));
}

TEST(PedersenTest, AdditivelyHomomorphic) {
  Rng rng(8);
  Scalar m1(100), m2(250);
  Scalar r1 = Scalar::Random(&rng), r2 = Scalar::Random(&rng);
  auto c1 = PedersenCommit(m1, r1);
  auto c2 = PedersenCommit(m2, r2);
  // C1 * C2 commits to m1 + m2 with blinding r1 + r2.
  PedersenCommitment sum{c1.c * c2.c};
  EXPECT_TRUE(PedersenOpen(sum, m1 + m2, r1 + r2));
}

TEST(PedersenTest, HidingUnderDifferentBlindings) {
  Rng rng(9);
  Scalar m(42);
  auto c1 = PedersenCommit(m, Scalar::Random(&rng));
  auto c2 = PedersenCommit(m, Scalar::Random(&rng));
  EXPECT_NE(c1.c.value(), c2.c.value());
}

}  // namespace
}  // namespace pbc::crypto
