// Parallel-sweep determinism tests: the JSON report produced by the
// seed-sweep engine must be byte-identical for every --jobs value (the
// runner binary stamps the only nondeterministic field, wall_ms,
// *outside* the report). These tests serialize whole reports with
// obs::Json::Dump() and compare the bytes — golden against the committed
// seed corpus (tests/seeds.txt), against an expanded grid, and with the
// quorum-mutation canary so the parallel shrinker's first-failure
// cancellation is exercised, not just clean runs.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/harness.h"
#include "check/runner.h"
#include "obs/metrics.h"
#include "seed_corpus.h"

namespace pbc::check {
namespace {

std::vector<RunConfig> LoadSeedCorpus() {
  std::ifstream in(PBC_SEEDS_FILE);
  EXPECT_TRUE(in.is_open()) << "missing " << PBC_SEEDS_FILE;
  std::vector<RunConfig> cells;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    RunConfig cfg;
    std::string error;
    EXPECT_TRUE(ParseSeedCorpusLine(line, &cfg, &error))
        << error << "\n  corpus line: " << line;
    cfg.txns = 20;
    cells.push_back(std::move(cfg));
  }
  return cells;
}

std::string SweepDump(const SweepOptions& base, size_t jobs) {
  SweepOptions options = base;
  options.jobs = jobs;
  return RunSweep(options).ToJson().Dump();
}

// --- Golden determinism over the committed seed corpus ----------------------

TEST(CheckParallelTest, SeedCorpusReportIsByteIdenticalAcrossJobs) {
  std::vector<RunConfig> cells = LoadSeedCorpus();
  ASSERT_GE(cells.size(), 10u);
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 8;
  std::string golden = RunSweepCells(cells, serial).ToJson().Dump();
  EXPECT_EQ(golden, RunSweepCells(cells, parallel).ToJson().Dump());
}

// --- Grid expansion path (what `check_runner --jobs N` executes) ------------

TEST(CheckParallelTest, GridReportIsByteIdenticalAcrossJobs) {
  SweepOptions base;
  base.protocols = {"pbft", "raft"};
  base.nemeses = {"crash", "crash,partition"};
  base.seeds = 4;
  base.txns = 15;
  std::string golden = SweepDump(base, 1);
  EXPECT_EQ(golden, SweepDump(base, 2));
  EXPECT_EQ(golden, SweepDump(base, 8));
  // jobs=0 means hardware concurrency — still the same bytes.
  EXPECT_EQ(golden, SweepDump(base, 0));
}

// --- Block pipeline determinism ---------------------------------------------

// Two identically-seeded faulted sweeps through the consensus block
// pipeline must dump byte-identical reports, and the report must stay
// byte-identical across --jobs. Block mode adds sealing, hash-ordering,
// body dissemination, and fetch-on-miss to every run — none of it may
// introduce schedule nondeterminism.
TEST(CheckParallelTest, BlockModeFaultedReportIsByteIdenticalAcrossJobs) {
  SweepOptions base;
  base.protocols = {"pbft", "raft", "tendermint"};
  base.nemeses = {"crash", "crash,partition"};
  base.seeds = 3;
  base.txns = 20;
  base.block_max_txns = 10;
  std::string golden = SweepDump(base, 1);
  // Same options, fresh sweep: identically-seeded faulted block-mode
  // runs reproduce the exact trace/metrics bytes.
  EXPECT_EQ(golden, SweepDump(base, 1));
  EXPECT_EQ(golden, SweepDump(base, 4));
  EXPECT_EQ(golden, SweepDump(base, 8));
}

// Block mode must change the runs (different MixSeed stream, sealing
// timers, body dissemination), not just be silently ignored: the
// simulated event count diverges from the inline path on the same cell,
// while both replay their own stream exactly.
TEST(CheckParallelTest, BlockModeIsNotASilentNoOp) {
  RunConfig inline_path;
  inline_path.protocol = "raft";
  inline_path.nemesis = "crash";
  inline_path.seed = 0;
  inline_path.txns = 20;
  RunConfig block_path = inline_path;
  block_path.block_max_txns = 10;
  RunResult inline_result = RunOne(inline_path);
  RunResult block_result = RunOne(block_path);
  EXPECT_NE(inline_result.sim_events, block_result.sim_events);
  EXPECT_EQ(block_result.sim_events, RunOne(block_path).sim_events);
  EXPECT_TRUE(block_result.ok());
}

// --- Parallel shrinking: the mutation canary under --jobs > 1 ---------------

// Failures — and the shrinker's concurrent candidate probes with
// first-failure cancellation — must also be deterministic: same shrunk
// windows, same charged replay counts, same report bytes as a serial run.
TEST(CheckParallelTest, MutationCanaryShrinksIdenticallyInParallel) {
  SweepOptions base;
  base.protocols = {"pbft"};
  base.nemeses = {"crash,partition"};
  base.seeds = 30;
  base.txns = 20;
  base.quorum_slack = 1;

  SweepOptions serial = base;
  serial.jobs = 1;
  SweepReport golden = RunSweep(serial);
  ASSERT_FALSE(golden.failures.empty())
      << "quorum mutation survived the sweep";

  SweepOptions parallel = base;
  parallel.jobs = 4;
  SweepReport report = RunSweep(parallel);
  EXPECT_EQ(golden.ToJson().Dump(), report.ToJson().Dump());

  // The parallel-shrunk schedule replays to the same failure and is
  // small: a crash window to desynchronize a replica plus the partition
  // window that splits the weakened quorum.
  ASSERT_FALSE(report.failures.empty());
  const SweepFailure& failure = report.failures.front();
  ASSERT_FALSE(failure.shrunk_schedule.empty());
  EXPECT_FALSE(RunWithSchedule(failure.config, failure.shrunk_schedule).ok());
  EXPECT_LE(failure.shrunk_windows.size(), 2u);
}

// --- Durable storage under --jobs > 1 ----------------------------------------

// Durable mode attaches per-replica block logs + snapshots over the sim
// filesystem and the crash-recovery checkers, and the torn-write /
// lost-flush nemeses drive its fault surface — none of which may
// introduce schedule nondeterminism: the sweep report must stay
// byte-identical for every --jobs value.
TEST(CheckParallelTest, DurableFaultedReportIsByteIdenticalAcrossJobs) {
  SweepOptions base;
  base.protocols = {"pbft", "raft"};
  base.nemeses = {"crash,torn-write", "crash,lost-flush"};
  base.seeds = 3;
  base.txns = 20;
  base.durable = true;
  std::string golden = SweepDump(base, 1);
  EXPECT_EQ(golden, SweepDump(base, 1));  // fresh serial sweep: same bytes
  EXPECT_EQ(golden, SweepDump(base, 4));
  EXPECT_EQ(golden, SweepDump(base, 8));
}

// Durable mode must change the runs (different MixSeed stream, fsync
// barriers, recovery checkers), not just be silently ignored: the
// simulated event count diverges from the plain path on the same cell,
// while both replay their own stream exactly.
TEST(CheckParallelTest, DurableModeIsNotASilentNoOp) {
  RunConfig plain;
  plain.protocol = "raft";
  plain.nemesis = "crash";
  plain.seed = 0;
  plain.txns = 20;
  RunConfig durable = plain;
  durable.durable = true;
  RunResult plain_result = RunOne(plain);
  RunResult durable_result = RunOne(durable);
  EXPECT_NE(plain_result.sim_events, durable_result.sim_events);
  EXPECT_EQ(durable_result.sim_events, RunOne(durable).sim_events);
  EXPECT_TRUE(durable_result.ok());
}

// --- Recovery-mutation canary: seed budget + parallel determinism ------------

// A seeded off-by-one in torn-tail truncation (--mutate-recovery) must be
// caught by a small durable sweep under the torn-write nemesis, shrink to
// a minimal schedule that still reproduces, and stay byte-identical
// across --jobs. Seeds 0-9 at txns=40 are the verified budget: the canary
// only wakes on a durably torn log tail, so it needs a torn-write crash
// window followed by a recovery, which about half these seeds produce.
TEST(CheckParallelTest, RecoveryMutationCanaryIsCaughtAndShrinks) {
  SweepOptions base;
  base.protocols = {"pbft"};
  base.nemeses = {"crash,torn-write"};
  base.seeds = 10;
  base.txns = 40;
  base.durable = true;
  base.mutate_recovery = true;

  SweepOptions serial = base;
  serial.jobs = 1;
  SweepReport golden = RunSweep(serial);
  ASSERT_FALSE(golden.failures.empty())
      << "recovery mutation survived the sweep";

  SweepOptions parallel = base;
  parallel.jobs = 4;
  SweepReport report = RunSweep(parallel);
  EXPECT_EQ(golden.ToJson().Dump(), report.ToJson().Dump());

  // The loss is flagged as a durability violation, and the shrunk
  // schedule still reproduces it when replayed.
  ASSERT_FALSE(report.failures.empty());
  const SweepFailure& failure = report.failures.front();
  ASSERT_FALSE(failure.violations.empty());
  EXPECT_EQ(failure.violations.front().invariant,
            std::string("durable-synced-commit"));
  ASSERT_FALSE(failure.shrunk_schedule.empty());
  EXPECT_FALSE(RunWithSchedule(failure.config, failure.shrunk_schedule).ok());
  EXPECT_LE(failure.shrunk_windows.size(), 2u);

  // Without the mutation the identical sweep is clean: the catch above is
  // the canary, not a broken durable path.
  SweepOptions healthy = base;
  healthy.mutate_recovery = false;
  healthy.jobs = 4;
  EXPECT_TRUE(RunSweep(healthy).ok())
      << "durable sweep fails even without the canary";
}

// --- Adaptive adversary modes under --jobs > 1 -------------------------------

// Adaptive runs record their injected faults as a trace and replay it
// statically during shrinking, so the whole pipeline — observation,
// injection, ddmin with first-failure cancellation — must stay
// byte-identical across --jobs. quorum_slack=1 seeds failures so the
// parallel shrinker is exercised, not just clean runs; the clock-skew
// overlay rides along to cover its MixSeed/report plumbing too.
TEST(CheckParallelTest, AdversaryReportIsByteIdenticalAcrossJobs) {
  SweepOptions base;
  base.protocols = {"pbft", "raft", "hotstuff"};
  base.nemeses = {"none"};
  base.adversary = "leader";
  base.seeds = 6;
  base.txns = 20;
  base.quorum_slack = 1;
  std::string golden = SweepDump(base, 1);
  EXPECT_EQ(golden, SweepDump(base, 4));
  EXPECT_EQ(golden, SweepDump(base, 8));

  SweepOptions skewed;
  skewed.protocols = {"raft", "tendermint"};
  skewed.nemeses = {"crash"};
  skewed.clock_skew_ppm = 150'000;
  skewed.seeds = 4;
  skewed.txns = 15;
  std::string skew_golden = SweepDump(skewed, 1);
  EXPECT_EQ(skew_golden, SweepDump(skewed, 8));
}

// The point of a state-aware adversary: at the same seed budget, chasing
// the leader finds the seeded quorum bug that random fault schedules
// miss. Seeds 0-9 at txns=20 are the verified budget — the leader
// adversary catches the mutation at seed 2 (and 9); the random
// generator's first catch is crash,partition seed 11, outside it.
TEST(CheckParallelTest, LeaderAdversaryOuthuntsRandomNemesis) {
  SweepOptions leader;
  leader.protocols = {"pbft"};
  leader.nemeses = {"none"};
  leader.adversary = "leader";
  leader.seeds = 10;
  leader.txns = 20;
  leader.quorum_slack = 1;
  leader.jobs = 4;
  SweepReport hunted = RunSweep(leader);
  ASSERT_FALSE(hunted.failures.empty())
      << "leader adversary lost the quorum mutation";
  // The shrunk repro replays and stays small: the forced leader crash
  // plus the post-election Byzantine flip.
  const SweepFailure& failure = hunted.failures.front();
  ASSERT_FALSE(failure.shrunk_schedule.empty());
  EXPECT_FALSE(
      RunWithSchedule(failure.config, failure.shrunk_schedule).ok());
  EXPECT_LE(failure.shrunk_windows.size(), 2u);

  SweepOptions random = leader;
  random.adversary = "random";
  random.nemeses = {"crash,partition", "crash,partition,delay,byzantine"};
  SweepReport missed = RunSweep(random);
  EXPECT_TRUE(missed.ok())
      << "random nemesis caught the bug inside the budget — the canary "
         "comparison needs a new seed range";
}

// --- Scheduler observability -------------------------------------------------

TEST(CheckParallelTest, ParallelSweepExportsSchedulerMetrics) {
  obs::MetricsRegistry registry;
  SweepOptions options;
  options.protocols = {"raft"};
  options.nemeses = {"crash"};
  options.seeds = 6;
  options.txns = 15;
  options.jobs = 3;
  options.scheduler_metrics = &registry;
  SweepReport report = RunSweep(options);
  EXPECT_EQ(report.runs, 6u);
  // Every sweep cell ran as one scheduler job (shrink probes would add
  // more, but this sweep is clean).
  EXPECT_EQ(registry.CounterValue("scheduler.jobs_run"), 6u);
  ASSERT_NE(registry.FindGauge("scheduler.workers"), nullptr);
  EXPECT_EQ(registry.FindGauge("scheduler.workers")->value(), 3);
}

TEST(CheckParallelTest, SerialSweepLeavesSchedulerMetricsUntouched) {
  obs::MetricsRegistry registry;
  SweepOptions options;
  options.protocols = {"raft"};
  options.nemeses = {"crash"};
  options.seeds = 2;
  options.txns = 15;
  options.jobs = 1;
  options.scheduler_metrics = &registry;
  RunSweep(options);
  EXPECT_EQ(registry.CounterValue("scheduler.jobs_run"), 0u);
}

}  // namespace
}  // namespace pbc::check
