// Wider seed sweeps over the check harness — labeled `slow`+`check`,
// excluded from tier1 (run with `ctest -L slow`). The nightly CI job goes
// wider still (~500 seeds per protocol via check_runner).
#include <gtest/gtest.h>

#include "check/runner.h"

namespace pbc::check {
namespace {

void ExpectSweepClean(SweepOptions options) {
  SweepReport report = RunSweep(options);
  for (const SweepFailure& failure : report.failures) {
    ADD_FAILURE() << "repro: " << failure.config.ReproLine()
                  << (failure.violations.empty()
                          ? ""
                          : "\n  [" + failure.violations[0].invariant + "] " +
                                failure.violations[0].detail);
  }
  // Liveness under these profiles is expected (fault-free tail), but a
  // straggler is not a safety failure; surface it without failing hard.
  if (!report.not_live.empty()) {
    GTEST_LOG_(WARNING) << report.not_live.size()
                        << " run(s) missed the horizon, first: "
                        << report.not_live.front();
  }
}

TEST(CheckSweepTest, ConsensusProtocolsUnderFullNemesis) {
  SweepOptions options;
  options.protocols = {"pbft", "raft", "hotstuff", "tendermint", "paxos"};
  options.nemeses = {"crash,partition,delay,byzantine"};
  options.seeds = 25;
  ExpectSweepClean(options);
}

TEST(CheckSweepTest, ConsensusProtocolsLargerClusters) {
  SweepOptions options;
  options.protocols = {"pbft", "raft", "hotstuff", "tendermint", "paxos"};
  options.nemeses = {"crash,partition"};
  options.cluster_sizes = {7};
  options.seeds = 10;
  ExpectSweepClean(options);
}

TEST(CheckSweepTest, ShardedSystemsUnderCrashAndDelay) {
  SweepOptions options;
  options.protocols = {"sharper", "ahl"};
  options.nemeses = {"crash,delay"};
  options.seeds = 10;
  ExpectSweepClean(options);
}

}  // namespace
}  // namespace pbc::check
