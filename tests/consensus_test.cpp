#include <gtest/gtest.h>

#include "check/harness.h"
#include "consensus/cluster.h"
#include "consensus/hotstuff.h"
#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "consensus/tendermint.h"

namespace pbc::consensus {
namespace {

constexpr sim::Time kMaxSimTime = 60'000'000;  // 60 simulated seconds

struct World {
  explicit World(uint64_t seed) : sim(seed), net(&sim) {
    net.SetDefaultLatency({500, 200});
  }
  sim::Simulator sim;
  sim::Network net;
  crypto::KeyRegistry registry;
};

template <typename R>
void SubmitN(Cluster<R>* cluster, int count, int base = 0) {
  for (int i = 0; i < count; ++i) {
    cluster->Submit(
        MakeKvTxn(base + i, "k" + std::to_string(i % 7), "v" + std::to_string(i)));
  }
}

// Runs until every non-skipped replica has committed `expect` txns.
template <typename R>
bool RunUntilCommitted(World* w, Cluster<R>* cluster, uint64_t expect,
                       const std::vector<size_t>& skip = {}) {
  return w->sim.RunUntil(
      [&] { return cluster->MinCommitted(skip) >= expect; }, kMaxSimTime);
}

// ---------------------------------------------------------------------------
// Typed tests: behaviours every protocol must share.
// ---------------------------------------------------------------------------

template <typename R>
class ProtocolTest : public ::testing::Test {};

using Protocols = ::testing::Types<PbftReplica, RaftReplica, HotStuffReplica,
                                   TendermintReplica>;
TYPED_TEST_SUITE(ProtocolTest, Protocols);

TYPED_TEST(ProtocolTest, CommitsSubmittedTransactions) {
  World w(1);
  Cluster<TypeParam> cluster(&w.net, &w.registry, 4);
  w.net.Start();
  SubmitN(&cluster, 20);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 20));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TYPED_TEST(ProtocolTest, ChainsIdenticalAcrossReplicas) {
  World w(2);
  Cluster<TypeParam> cluster(&w.net, &w.registry, 4);
  w.net.Start();
  SubmitN(&cluster, 50);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 50));
  // Let stragglers drain, then insist chains agree block-for-block.
  w.sim.Run(w.sim.now() + 2'000'000);
  for (size_t i = 1; i < cluster.size(); ++i) {
    EXPECT_TRUE(cluster.replica(0)->chain().PrefixConsistentWith(
        cluster.replica(i)->chain()));
  }
  EXPECT_TRUE(cluster.replica(0)->chain().Audit().ok());
}

TYPED_TEST(ProtocolTest, NoDuplicateCommits) {
  World w(3);
  Cluster<TypeParam> cluster(&w.net, &w.registry, 4);
  w.net.Start();
  // Submit the same transactions twice; ids dedup in the pool and at
  // delivery, so exactly 10 commits must appear.
  SubmitN(&cluster, 10);
  SubmitN(&cluster, 10);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 10));
  w.sim.Run(w.sim.now() + 5'000'000);
  for (size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.replica(i)->committed_txns(), 10u) << "replica " << i;
  }
}

TYPED_TEST(ProtocolTest, ProgressWithMessageJitter) {
  World w(4);
  w.net.SetDefaultLatency({500, 2000});  // heavy jitter → reordering
  Cluster<TypeParam> cluster(&w.net, &w.registry, 4);
  w.net.Start();
  SubmitN(&cluster, 30);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 30));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TYPED_TEST(ProtocolTest, LargerClusterStillCommits) {
  World w(5);
  Cluster<TypeParam> cluster(&w.net, &w.registry, 7);
  w.net.Start();
  SubmitN(&cluster, 15);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 15));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

// ---------------------------------------------------------------------------
// BFT protocols: crash and Byzantine fault tolerance.
// ---------------------------------------------------------------------------

template <typename R>
class BftProtocolTest : public ::testing::Test {};
using BftProtocols =
    ::testing::Types<PbftReplica, HotStuffReplica, TendermintReplica>;
TYPED_TEST_SUITE(BftProtocolTest, BftProtocols);

TYPED_TEST(BftProtocolTest, ToleratesOneCrashedFollower) {
  World w(6);
  Cluster<TypeParam> cluster(&w.net, &w.registry, 4);
  w.net.Start();
  w.net.Crash(3);  // not the initial leader for any of the protocols
  SubmitN(&cluster, 20);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 20, /*skip=*/{3}));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TYPED_TEST(BftProtocolTest, ToleratesCrashedLeaderViaViewChange) {
  World w(7);
  Cluster<TypeParam> cluster(&w.net, &w.registry, 4);
  w.net.Start();
  // Submit first so the initial leader is mid-protocol, then kill it.
  SubmitN(&cluster, 10);
  w.sim.Run(200);  // a few events in
  // Crash whichever node leads first: PBFT view 0 → replica 0;
  // HotStuff view 1 → replica 1; Tendermint h=1,r=0 → depends on rotation.
  // Crash replica 0 and replica-index of the current proposer would need
  // protocol knowledge; crashing node 0 exercises leader loss for PBFT and
  // a follower loss otherwise — both must keep committing.
  w.net.Crash(0);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 10, /*skip=*/{0}));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TYPED_TEST(BftProtocolTest, SafeUnderSilentByzantineReplica) {
  World w(8);
  Cluster<TypeParam> cluster(&w.net, &w.registry, 4);
  cluster.replica(2)->set_byzantine_mode(ByzantineMode::kSilent);
  w.net.Start();
  SubmitN(&cluster, 20);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 20, /*skip=*/{2}));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TYPED_TEST(BftProtocolTest, SafeUnderEquivocatingLeader) {
  World w(9);
  Cluster<TypeParam> cluster(&w.net, &w.registry, 4);
  // Make every replica equivocate when it happens to lead; honest quorum
  // (3 of 4 needed) can never form on both forks, so safety must hold.
  cluster.replica(0)->set_byzantine_mode(ByzantineMode::kEquivocate);
  w.net.Start();
  SubmitN(&cluster, 20);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 20, /*skip=*/{0}));
  w.sim.Run(w.sim.now() + 2'000'000);
  EXPECT_TRUE(cluster.ChainsConsistent());
  // The forged "evil" fork must not have been committed anywhere: every
  // committed chain contains only client transactions.
  for (size_t i = 1; i < cluster.size(); ++i) {
    for (const auto& block : cluster.replica(i)->chain().blocks()) {
      for (const auto& t : block.txns) {
        EXPECT_LT(t.id, 0xE000000000ULL) << "evil txn committed!";
      }
    }
  }
}

TYPED_TEST(BftProtocolTest, SafeUnderPromiscuousVoter) {
  World w(10);
  Cluster<TypeParam> cluster(&w.net, &w.registry, 4);
  cluster.replica(1)->set_byzantine_mode(ByzantineMode::kVoteBoth);
  w.net.Start();
  SubmitN(&cluster, 20);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 20, /*skip=*/{1}));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

// Property sweep: randomized fault schedules through the src/check
// harness, which layers the full invariant suite (agreement, linkage,
// validity, KV linearizability, conservation) over every seed and prints
// a replayable check_runner line on failure. The bespoke
// crash-at-random-time loops this file used to carry live there now.
class ConsensusPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void ExpectClean(const std::string& protocol, uint64_t seed,
                          const std::string& nemesis) {
    check::RunConfig cfg;
    cfg.protocol = protocol;
    cfg.nemesis = nemesis;
    cfg.seed = seed;
    cfg.txns = 25;
    check::RunResult result = check::RunOne(cfg);
    for (const check::Violation& v : result.violations) {
      ADD_FAILURE() << "[" << v.invariant << "] " << v.detail
                    << "\n  repro: " << cfg.ReproLine();
    }
    EXPECT_TRUE(result.live) << "not live; repro: " << cfg.ReproLine();
  }
};

TEST_P(ConsensusPropertyTest, PbftSafeAndLiveUnderRandomCrash) {
  ExpectClean("pbft", GetParam(), "crash");
}

TEST_P(ConsensusPropertyTest, HotStuffSafeAndLiveUnderRandomCrash) {
  ExpectClean("hotstuff", GetParam(), "crash");
}

TEST_P(ConsensusPropertyTest, TendermintSafeAndLiveUnderRandomCrash) {
  ExpectClean("tendermint", GetParam(), "crash");
}

TEST_P(ConsensusPropertyTest, RaftSafeUnderCrashAndPartition) {
  ExpectClean("raft", GetParam(), "crash,partition");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsensusPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

// ---------------------------------------------------------------------------
// Block pipeline: proposers seal pool transactions into hash-chained
// blocks, consensus orders the 32-byte block hashes, and bodies travel
// beside the protocol (broadcast at proposal, fetched on a miss).
// ---------------------------------------------------------------------------

ClusterConfig BlockConfig(size_t max_txns, sim::Time max_delay_us = 5000) {
  ClusterConfig cfg;
  cfg.block.enabled = true;
  cfg.block.max_txns = max_txns;
  cfg.block.max_delay_us = max_delay_us;
  return cfg;
}

TYPED_TEST(ProtocolTest, BlockModeCommitsAndBatchesIntoChainBlocks) {
  World w(60);
  Cluster<TypeParam> cluster(&w.net, &w.registry, 4, BlockConfig(50));
  w.net.Start();
  SubmitN(&cluster, 200);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 200));
  w.sim.Run(w.sim.now() + 2'000'000);
  EXPECT_TRUE(cluster.ChainsConsistent());
  // The size cut batches 200 txns into ~4 sealed blocks, so the chain
  // must be far shorter than one-height-per-txn.
  EXPECT_LE(cluster.replica(0)->chain().height(), 10u);
  for (size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_FALSE(cluster.replica(i)->delivery_stalled_on_body())
        << "replica " << i << " still waiting on a block body";
  }
}

TYPED_TEST(ProtocolTest, BlockModeTimerCutFlushesPartialBlock) {
  // Fewer txns than the size cut: only the timer cut can seal the block,
  // so commitment at all proves the timer-cut path.
  World w(61);
  Cluster<TypeParam> cluster(&w.net, &w.registry, 4,
                             BlockConfig(/*max_txns=*/200));
  w.net.Start();
  SubmitN(&cluster, 15);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 15));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TYPED_TEST(ProtocolTest, BlockModeQuorumLiveUnderMessageDrops) {
  // 15% message drops hit block bodies and fetch traffic as much as the
  // protocol itself; a quorum must still commit everything (a single
  // laggard is permitted — consensus-level catch-up is out of scope).
  World w(62);
  w.net.SetDropRate(0.15);
  Cluster<TypeParam> cluster(&w.net, &w.registry, 4, BlockConfig(10));
  w.net.Start();
  SubmitN(&cluster, 40);
  ASSERT_TRUE(w.sim.RunUntil(
      [&] {
        size_t caught_up = 0;
        for (size_t i = 0; i < cluster.size(); ++i) {
          if (cluster.replica(i)->committed_txns() >= 40) ++caught_up;
        }
        return caught_up >= 3;
      },
      kMaxSimTime));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TEST(BlockPipelineTest, PartitionedFollowerFetchesMissedBodies) {
  // Replica 3 is partitioned away while the majority seals and commits
  // blocks, so it misses every body broadcast. After healing, raft's
  // append retries hand it block *references*; it must fetch the bodies
  // it never saw before it can deliver.
  World w(63);
  Cluster<RaftReplica> cluster(&w.net, &w.registry, 4, BlockConfig(10));
  w.net.Start();
  SubmitN(&cluster, 5);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 5));
  w.net.Partition({{0, 1, 2}, {3}});
  SubmitN(&cluster, 30, /*base=*/100);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 35, /*skip=*/{3}));
  EXPECT_LT(cluster.replica(3)->committed_txns(), 35u);
  w.net.Heal();
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 35));
  EXPECT_TRUE(cluster.ChainsConsistent());
  EXPECT_FALSE(cluster.replica(3)->delivery_stalled_on_body());
  // The bodies it delivered are now resident in its block store.
  EXPECT_GT(cluster.replica(3)->block_store().size(), 0u);
}

TYPED_TEST(BftProtocolTest, BlockModeSafeUnderEquivocatingLeader) {
  // Equivocating proposers fall back to inline payloads; honest replicas
  // keep sealing blocks. Safety must hold across the mixed chain.
  World w(64);
  Cluster<TypeParam> cluster(&w.net, &w.registry, 4, BlockConfig(10));
  cluster.replica(0)->set_byzantine_mode(ByzantineMode::kEquivocate);
  w.net.Start();
  SubmitN(&cluster, 20);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 20, /*skip=*/{0}));
  w.sim.Run(w.sim.now() + 2'000'000);
  EXPECT_TRUE(cluster.ChainsConsistent());
  for (size_t i = 1; i < cluster.size(); ++i) {
    for (const auto& block : cluster.replica(i)->chain().blocks()) {
      for (const auto& t : block.txns) {
        EXPECT_LT(t.id, 0xE000000000ULL) << "evil txn committed!";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Protocol-specific behaviours.
// ---------------------------------------------------------------------------

TEST(PbftTest, ViewChangesOccurWhenPrimaryCrashes) {
  World w(20);
  Cluster<PbftReplica> cluster(&w.net, &w.registry, 4);
  w.net.Start();
  SubmitN(&cluster, 10);
  w.net.Crash(0);  // primary of view 0
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 10, {0}));
  EXPECT_GT(cluster.replica(1)->view(), 0u);
  EXPECT_GT(cluster.replica(1)->view_changes(), 0u);
}

TEST(PbftTest, CheckpointsBecomeStable) {
  World w(21);
  ClusterConfig cfg;
  cfg.batch_size = 1;  // many sequences quickly
  cfg.checkpoint_interval = 8;
  Cluster<PbftReplica> cluster(&w.net, &w.registry, 4, cfg);
  w.net.Start();
  SubmitN(&cluster, 40);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 40));
  w.sim.Run(w.sim.now() + 2'000'000);
  EXPECT_GE(cluster.replica(0)->stable_checkpoint(), 8u);
}

TEST(PbftTest, NoViewChangeWhenIdle) {
  World w(22);
  Cluster<PbftReplica> cluster(&w.net, &w.registry, 4);
  w.net.Start();
  w.sim.Run(10'000'000);  // long idle period
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.replica(i)->view(), 0u);
    EXPECT_EQ(cluster.replica(i)->view_changes(), 0u);
  }
}

TEST(PbftTest, QuadraticMessageComplexity) {
  // PBFT's prepare/commit phases are all-to-all: message count grows ~n².
  auto count_messages = [](size_t n) {
    World w(23);
    Cluster<PbftReplica> cluster(&w.net, &w.registry, n);
    w.net.Start();
    w.net.ResetStats();
    SubmitN(&cluster, 10);
    RunUntilCommitted(&w, &cluster, 10);
    return w.net.stats().messages_sent;
  };
  uint64_t m4 = count_messages(4);
  uint64_t m8 = count_messages(8);
  // 8 replicas should send clearly more than 2x the messages of 4.
  EXPECT_GT(m8, m4 * 2);
}

TEST(RaftTest, ElectsExactlyOneLeaderPerTerm) {
  World w(30);
  Cluster<RaftReplica> cluster(&w.net, &w.registry, 5);
  w.net.Start();
  ASSERT_TRUE(w.sim.RunUntil(
      [&] {
        for (size_t i = 0; i < 5; ++i) {
          if (cluster.replica(i)->IsLeader()) return true;
        }
        return false;
      },
      kMaxSimTime));
  std::map<uint64_t, int> leaders_per_term;
  for (size_t i = 0; i < 5; ++i) {
    if (cluster.replica(i)->IsLeader()) {
      leaders_per_term[cluster.replica(i)->term()]++;
    }
  }
  for (const auto& [term, count] : leaders_per_term) EXPECT_EQ(count, 1);
}

TEST(RaftTest, ReElectsAfterLeaderCrash) {
  World w(31);
  Cluster<RaftReplica> cluster(&w.net, &w.registry, 5);
  w.net.Start();
  SubmitN(&cluster, 5);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 5));
  // Find and crash the leader.
  size_t leader = 99;
  for (size_t i = 0; i < 5; ++i) {
    if (cluster.replica(i)->IsLeader()) leader = i;
  }
  ASSERT_NE(leader, 99u);
  w.net.Crash(static_cast<sim::NodeId>(leader));
  SubmitN(&cluster, 5, /*base=*/100);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 10, {leader}));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TEST(RaftTest, MajorityPartitionKeepsCommitting) {
  World w(32);
  Cluster<RaftReplica> cluster(&w.net, &w.registry, 5);
  w.net.Start();
  SubmitN(&cluster, 5);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 5));
  w.net.Partition({{0, 1, 2}, {3, 4}});
  SubmitN(&cluster, 5, /*base=*/100);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 10, {3, 4}));
  // Minority must not advance past the majority.
  EXPECT_LE(cluster.replica(3)->committed_txns(),
            cluster.replica(0)->committed_txns());
  // Heal: everyone converges.
  w.net.Heal();
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 10));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TEST(RaftTest, MinorityPartitionCannotCommit) {
  World w(33);
  Cluster<RaftReplica> cluster(&w.net, &w.registry, 5);
  w.net.Start();
  SubmitN(&cluster, 5);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 5));
  w.net.Partition({{0, 1}, {2, 3, 4}});
  uint64_t before_0 = cluster.replica(0)->committed_txns();
  uint64_t before_1 = cluster.replica(1)->committed_txns();
  SubmitN(&cluster, 5, /*base=*/100);
  w.sim.Run(w.sim.now() + 5'000'000);
  EXPECT_EQ(cluster.replica(0)->committed_txns(), before_0);
  EXPECT_EQ(cluster.replica(1)->committed_txns(), before_1);
}

TEST(HotStuffTest, LinearMessagesPerView) {
  // HotStuff votes flow replica→leader, so the per-view message cost is
  // O(n): one broadcast proposal (n), n votes, n new-view announcements.
  // PBFT by contrast is O(n²) per decision. Verify per-view cost scales
  // linearly: normalized per replica it should be a constant.
  auto per_view_per_replica = [](size_t n) {
    World w(40);
    Cluster<HotStuffReplica> cluster(&w.net, &w.registry, n);
    w.net.Start();
    w.net.ResetStats();
    for (int i = 0; i < 10; ++i) {
      cluster.Submit(MakeKvTxn(i, "k", "v"));
    }
    RunUntilCommitted(&w, &cluster, 10);
    double views = static_cast<double>(cluster.replica(0)->view());
    return static_cast<double>(w.net.stats().messages_sent) / views /
           static_cast<double>(n);
  };
  double c4 = per_view_per_replica(4);
  double c8 = per_view_per_replica(8);
  double c16 = per_view_per_replica(16);
  // All three should be the same small constant (~2.5); a quadratic
  // protocol would double it with each size doubling.
  EXPECT_LT(c8 / c4, 1.6);
  EXPECT_LT(c16 / c4, 1.6);
}

TEST(HotStuffTest, RotatesLeaderEachView) {
  World w(41);
  Cluster<HotStuffReplica> cluster(&w.net, &w.registry, 4);
  w.net.Start();
  SubmitN(&cluster, 20);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 20));
  // Chained HotStuff advances a view per decision: the final view must be
  // well beyond the start and leaders rotate view % n.
  EXPECT_GT(cluster.replica(0)->view(), 3u);
}

TEST(TendermintTest, WeightedQuorumRespectsVotingPower) {
  // Validator 0 holds 2/3+ of the power: nothing commits without it.
  World w(50);
  ClusterConfig cfg;
  cfg.voting_power = {7, 1, 1, 1};  // total 10; quorum needs > 6.66
  Cluster<TendermintReplica> cluster(&w.net, &w.registry, 4, cfg);
  w.net.Start();
  w.net.Crash(0);
  SubmitN(&cluster, 5);
  w.sim.Run(20'000'000);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(cluster.replica(i)->committed_txns(), 0u);
  }
}

TEST(TendermintTest, LowPowerValidatorCrashHarmless) {
  World w(51);
  ClusterConfig cfg;
  cfg.voting_power = {7, 1, 1, 1};
  Cluster<TendermintReplica> cluster(&w.net, &w.registry, 4, cfg);
  w.net.Start();
  w.net.Crash(3);  // only 1 power lost; 9 > 2/3 of 10 remains
  SubmitN(&cluster, 10);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 10, {3}));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TEST(TendermintTest, ProposerRotationIsPowerProportional) {
  World w(52);
  ClusterConfig cfg;
  cfg.voting_power = {3, 1, 1, 1};
  Cluster<TendermintReplica> cluster(&w.net, &w.registry, 4, cfg);
  // Count proposer slots over a full rotation period.
  std::map<size_t, int> slots;
  for (uint64_t h = 0; h < 6; ++h) {
    slots[cluster.replica(0)->ProposerIndexFor(h, 0)]++;
  }
  EXPECT_EQ(slots[0], 3);  // 3 of 6 slots for the 3-power validator
  EXPECT_EQ(slots[1], 1);
  EXPECT_EQ(slots[2], 1);
  EXPECT_EQ(slots[3], 1);
}

TEST(TendermintTest, HeightsAdvanceOneAtATime) {
  World w(53);
  ClusterConfig cfg;
  cfg.batch_size = 5;
  Cluster<TendermintReplica> cluster(&w.net, &w.registry, 4, cfg);
  w.net.Start();
  SubmitN(&cluster, 20);
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 20));
  EXPECT_GE(cluster.replica(0)->height(), 4u);  // ≥ 20/5 heights committed
  EXPECT_TRUE(cluster.ChainsConsistent());
}

}  // namespace
}  // namespace pbc::consensus
