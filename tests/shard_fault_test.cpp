// Fault injection across the sharding layer: every shard is a real PBFT
// cluster, so each tolerates f=1 faulty replicas without the cross-shard
// protocols noticing.
#include <gtest/gtest.h>

#include "check/harness.h"
#include "shard/resilientdb.h"
#include "shard/sharper.h"
#include "shard/two_phase.h"

namespace pbc::shard {
namespace {

using txn::Op;
using txn::Transaction;

constexpr sim::Time kMaxSimTime = 300'000'000;

struct World {
  explicit World(uint64_t seed) : sim(seed), net(&sim) {
    net.SetDefaultLatency({500, 200});
  }
  sim::Simulator sim;
  sim::Network net;
  crypto::KeyRegistry registry;
};

Transaction Deposit(txn::TxnId id, const std::string& key, int64_t amount) {
  Transaction t;
  t.id = id;
  t.ops.push_back(Op::Increment(key, amount));
  return t;
}

Transaction Transfer(txn::TxnId id, const std::string& from,
                     const std::string& to, int64_t amount) {
  Transaction t;
  t.id = id;
  t.ops.push_back(Op::Increment(from, -amount));
  t.ops.push_back(Op::Increment(to, amount));
  return t;
}

TEST(ShardFaultTest, SharperSurvivesOneCrashPerCluster) {
  World w(1);
  SharperSystem sys(&w.net, &w.registry, 2, /*replicas_per_shard=*/4);
  std::map<txn::TxnId, bool> results;
  sys.set_listener([&](txn::TxnId id, bool ok) { results[id] = ok; });
  w.net.Start();
  // Crash one replica in each shard cluster (node ids: shard 0 = 0..3,
  // gateway 4; shard 1 = 5..8, gateway 9).
  w.net.Crash(2);
  w.net.Crash(7);
  sys.Submit(Deposit(1, "s0/a", 100));
  ASSERT_TRUE(w.sim.RunUntil([&] { return results.count(1) == 1; },
                             kMaxSimTime));
  sys.Submit(Transfer(2, "s0/a", "s1/b", 25));
  ASSERT_TRUE(w.sim.RunUntil([&] { return results.count(2) == 1; },
                             kMaxSimTime));
  EXPECT_TRUE(results[2]);
  w.sim.Run(w.sim.now() + 30'000'000);
  EXPECT_EQ(sys.TotalBalance(), 100);
  // Surviving replicas in each cluster stayed consistent.
  for (int s = 0; s < 2; ++s) {
    EXPECT_TRUE(sys.shard(s)->consensus()->ChainsConsistent());
  }
}

TEST(ShardFaultTest, SharperSurvivesSilentByzantineReplicas) {
  World w(2);
  SharperSystem sys(&w.net, &w.registry, 2);
  std::map<txn::TxnId, bool> results;
  sys.set_listener([&](txn::TxnId id, bool ok) { results[id] = ok; });
  // One silent Byzantine replica per cluster.
  sys.shard(0)->consensus()->replica(3)->set_byzantine_mode(
      consensus::ByzantineMode::kSilent);
  sys.shard(1)->consensus()->replica(3)->set_byzantine_mode(
      consensus::ByzantineMode::kSilent);
  w.net.Start();
  sys.Submit(Deposit(1, "s0/a", 50));
  ASSERT_TRUE(w.sim.RunUntil([&] { return results.count(1) == 1; },
                             kMaxSimTime));
  sys.Submit(Transfer(2, "s0/a", "s1/b", 10));
  ASSERT_TRUE(w.sim.RunUntil([&] { return results.count(2) == 1; },
                             kMaxSimTime));
  EXPECT_TRUE(results[2]);
  w.sim.Run(w.sim.now() + 30'000'000);
  EXPECT_EQ(sys.TotalBalance(), 50);
}

TEST(ShardFaultTest, AhlSurvivesCommitteeReplicaCrash) {
  World w(3);
  TwoPhaseShardSystem sys(&w.net, &w.registry, TwoPhaseConfig::Ahl(2));
  std::map<txn::TxnId, bool> results;
  sys.set_listener([&](txn::TxnId id, bool ok) { results[id] = ok; });
  w.net.Start();
  // Committee replicas live at ids [10, 14); crash one.
  w.net.Crash(11);
  sys.Submit(Deposit(1, "s0/a", 100));
  ASSERT_TRUE(w.sim.RunUntil([&] { return results.count(1) == 1; },
                             kMaxSimTime));
  sys.Submit(Transfer(2, "s0/a", "s1/b", 40));
  ASSERT_TRUE(w.sim.RunUntil([&] { return results.count(2) == 1; },
                             kMaxSimTime));
  EXPECT_TRUE(results[2]);
  w.sim.Run(w.sim.now() + 30'000'000);
  EXPECT_EQ(sys.TotalBalance(), 100);
}

TEST(ShardFaultTest, ResilientDbSurvivesCrashInEachCluster) {
  World w(4);
  ResilientDbSystem sys(&w.net, &w.registry, 2);
  size_t done = 0;
  sys.set_listener([&](txn::TxnId, bool) { ++done; });
  w.net.Start();
  w.net.Crash(1);  // cluster 0 replica
  w.net.Crash(6);  // cluster 1 replica
  sys.Submit(0, Deposit(1, "x", 5));
  sys.Submit(1, Deposit(2, "y", 7));
  ASSERT_TRUE(w.sim.RunUntil([&] { return done >= 2; }, kMaxSimTime));
  w.sim.Run(w.sim.now() + 30'000'000);
  EXPECT_TRUE(sys.StateOf(0).SameLatestState(sys.StateOf(1)));
  EXPECT_EQ(txn::DecodeInt(sys.StateOf(0).Get("x").ValueOrDie().value), 5);
}

// Property sweep: randomized crash/recovery schedules via the src/check
// harness, whose invariant suite adds per-cluster agreement, ledger
// linkage, cross-shard atomicity, and settled-state conservation on top
// of the fixed-crash total-balance assertion this sweep used to make.
class ShardFaultPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void ExpectClean(const std::string& protocol, uint64_t seed) {
    check::RunConfig cfg;
    cfg.protocol = protocol;
    cfg.nemesis = "crash";
    cfg.seed = seed;
    cfg.txns = 12;  // a few deposits + transfers keeps the sweep quick
    check::RunResult result = check::RunOne(cfg);
    for (const check::Violation& v : result.violations) {
      ADD_FAILURE() << "[" << v.invariant << "] " << v.detail
                    << "\n  repro: " << cfg.ReproLine();
    }
    EXPECT_TRUE(result.live) << "not live; repro: " << cfg.ReproLine();
  }
};

TEST_P(ShardFaultPropertyTest, SharperConservesMoneyUnderRandomCrash) {
  ExpectClean("sharper", GetParam());
}

TEST_P(ShardFaultPropertyTest, AhlConservesMoneyUnderRandomCrash) {
  ExpectClean("ahl", GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardFaultPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

}  // namespace
}  // namespace pbc::shard
