#include <gtest/gtest.h>

#include "arch/architecture.h"
#include "arch/fabricpp.h"
#include "arch/reorder.h"
#include "arch/xov.h"
#include "common/rng.h"

namespace pbc::arch {
namespace {

using txn::Op;
using txn::Transaction;

Transaction T(txn::TxnId id, std::vector<Op> ops) {
  Transaction t;
  t.id = id;
  t.ops = std::move(ops);
  return t;
}

std::vector<Transaction> DisjointBlock(int n, txn::TxnId base = 0) {
  std::vector<Transaction> block;
  for (int i = 0; i < n; ++i) {
    block.push_back(
        T(base + i, {Op::Increment("key" + std::to_string(i), 1)}));
  }
  return block;
}

// Block where every transaction increments the same hot key.
std::vector<Transaction> HotBlock(int n, txn::TxnId base = 0) {
  std::vector<Transaction> block;
  for (int i = 0; i < n; ++i) {
    block.push_back(T(base + i, {Op::Increment("hot", 1)}));
  }
  return block;
}

template <typename A>
std::unique_ptr<A> Make(ThreadPool* pool) {
  return std::make_unique<A>(pool);
}

// ---------------------------------------------------------------------------
// Shared behaviours.
// ---------------------------------------------------------------------------

template <typename A>
class ArchCommonTest : public ::testing::Test {};
using AllArchitectures =
    ::testing::Types<OxArchitecture, OxiiArchitecture, XovArchitecture,
                     FastFabricArchitecture, XoxArchitecture,
                     FabricPPArchitecture, FabricSharpArchitecture>;
TYPED_TEST_SUITE(ArchCommonTest, AllArchitectures);

TYPED_TEST(ArchCommonTest, CommitsDisjointBlockEntirely) {
  ThreadPool pool(4);
  auto arch = Make<TypeParam>(&pool);
  arch->ProcessBlock(DisjointBlock(20));
  EXPECT_EQ(arch->stats().committed, 20u);
  EXPECT_EQ(arch->stats().aborted + arch->stats().early_aborted, 0u);
  for (int i = 0; i < 20; ++i) {
    auto v = arch->store().Get("key" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(txn::DecodeInt(v.ValueOrDie().value), 1);
  }
}

TYPED_TEST(ArchCommonTest, LedgerRecordsCommittedTxns) {
  ThreadPool pool(4);
  auto arch = Make<TypeParam>(&pool);
  arch->ProcessBlock(DisjointBlock(5));
  arch->ProcessBlock(DisjointBlock(5, /*base=*/100));
  EXPECT_EQ(arch->chain().height(), 2u);
  EXPECT_TRUE(arch->chain().Audit().ok());
  EXPECT_EQ(arch->chain().at(0).txns.size(), 5u);
}

TYPED_TEST(ArchCommonTest, EmptyBlockIsHarmless) {
  ThreadPool pool(2);
  auto arch = Make<TypeParam>(&pool);
  arch->ProcessBlock(std::vector<Transaction>{});
  EXPECT_EQ(arch->stats().committed, 0u);
  EXPECT_EQ(arch->chain().height(), 0u);
}

// Deterministic-outcome architectures (pessimistic or re-executing) must
// match OX's final state exactly on any workload.
template <typename A>
class DeterministicArchTest : public ::testing::Test {};
using DeterministicArchitectures =
    ::testing::Types<OxiiArchitecture, XoxArchitecture>;
TYPED_TEST_SUITE(DeterministicArchTest, DeterministicArchitectures);

TYPED_TEST(DeterministicArchTest, MatchesOxOnContendedWorkload) {
  ThreadPool pool(4);
  OxArchitecture ox(&pool);
  auto arch = Make<TypeParam>(&pool);

  Rng rng(7);
  for (int b = 0; b < 5; ++b) {
    std::vector<Transaction> block;
    for (int i = 0; i < 30; ++i) {
      std::string k = "k" + std::to_string(rng.NextU64(6));
      block.push_back(T(b * 100 + i, {Op::Increment(k, 1)}));
    }
    ox.ProcessBlock(block);
    arch->ProcessBlock(block);
  }
  // XOX re-executes conflicting increments serially; OXII serializes them
  // through the dependency graph. Both preserve all effects.
  EXPECT_TRUE(ox.store().SameLatestState(arch->store()));
}

// ---------------------------------------------------------------------------
// Contention behaviour (the survey's §2.3.3 discussion).
// ---------------------------------------------------------------------------

TEST(XovTest, HotBlockAbortsAllButOne) {
  ThreadPool pool(4);
  XovArchitecture xov(&pool);
  xov.ProcessBlock(HotBlock(10));
  // All ten endorsed against the same snapshot; the first commit bumps the
  // hot key's version, invalidating the other nine.
  EXPECT_EQ(xov.stats().committed, 1u);
  EXPECT_EQ(xov.stats().aborted, 9u);
  EXPECT_EQ(txn::DecodeInt(xov.store().Get("hot").ValueOrDie().value), 1);
}

TEST(XovTest, OxiiCommitsSameHotBlockFully) {
  ThreadPool pool(4);
  OxiiArchitecture oxii(&pool);
  oxii.ProcessBlock(HotBlock(10));
  EXPECT_EQ(oxii.stats().committed, 10u);
  EXPECT_EQ(txn::DecodeInt(oxii.store().Get("hot").ValueOrDie().value), 10);
}

TEST(XovTest, CrossBlockStalenessDetected) {
  ThreadPool pool(2);
  XovArchitecture xov(&pool);
  xov.ProcessBlock({T(1, {Op::Write("k", "v1")})});
  // Reads k at version 1, then a conflicting write in the same block from
  // an earlier transaction — version check fails for the reader.
  xov.ProcessBlock({T(2, {Op::Write("k", "v2")}),
                    T(3, {Op::Read("k"), Op::Write("out", "x")})});
  EXPECT_EQ(xov.stats().aborted, 1u);
  EXPECT_FALSE(xov.store().Get("out").ok());
}

TEST(XovTest, BlindWritesNeverConflict) {
  ThreadPool pool(2);
  XovArchitecture xov(&pool);
  std::vector<Transaction> block;
  for (int i = 0; i < 8; ++i) {
    block.push_back(T(i, {Op::Write("k", "v" + std::to_string(i))}));
  }
  xov.ProcessBlock(block);
  // Fabric's MVCC check validates reads only; blind writes all pass.
  EXPECT_EQ(xov.stats().committed, 8u);
  EXPECT_EQ(xov.store().Get("k").ValueOrDie().value, "v7");
}

TEST(XoxTest, ReexecutesInsteadOfAborting) {
  ThreadPool pool(4);
  XoxArchitecture xox(&pool);
  xox.ProcessBlock(HotBlock(10));
  EXPECT_EQ(xox.stats().committed, 10u);
  EXPECT_EQ(xox.stats().aborted, 0u);
  EXPECT_EQ(xox.stats().reexecuted, 9u);
  EXPECT_EQ(txn::DecodeInt(xox.store().Get("hot").ValueOrDie().value), 10);
}

TEST(FastFabricTest, SameSemanticsAsXov) {
  ThreadPool pool(4);
  XovArchitecture xov(&pool, /*validation_cost_rounds=*/50);
  FastFabricArchitecture ff(&pool, /*validation_cost_rounds=*/50);
  Rng rng(11);
  for (int b = 0; b < 4; ++b) {
    std::vector<Transaction> block;
    for (int i = 0; i < 25; ++i) {
      std::string k = "k" + std::to_string(rng.NextU64(8));
      block.push_back(
          T(b * 100 + i, {Op::Read(k), Op::Write(k + "-mirror", "x")}));
    }
    xov.ProcessBlock(block);
    ff.ProcessBlock(block);
  }
  EXPECT_EQ(xov.stats().committed, ff.stats().committed);
  EXPECT_EQ(xov.stats().aborted, ff.stats().aborted);
  EXPECT_TRUE(xov.store().SameLatestState(ff.store()));
}

// ---------------------------------------------------------------------------
// Reordering (Fabric++ / FabricSharp).
// ---------------------------------------------------------------------------

// Build endorsements directly for graph tests.
std::vector<Endorsed> Endorse(XovBase* /*unused*/,
                              const std::vector<Transaction>& block,
                              ThreadPool* pool) {
  // Endorse against an empty store (all reads at version 0).
  struct Probe : XovBase {
    using XovBase::XovBase;
    const char* name() const override { return "probe"; }
    void ProcessBlock(const std::vector<Transaction>&) override {}
    std::vector<Endorsed> Run(const std::vector<Transaction>& b) {
      return EndorseAll(b);
    }
  };
  static thread_local std::unique_ptr<Probe> probe;
  probe = std::make_unique<Probe>(pool);
  return probe->Run(block);
}

TEST(ReorderTest, ConflictGraphEdgesPointReaderToWriter) {
  ThreadPool pool(2);
  // t0 reads a; t1 writes a. Edge 0 -> 1.
  std::vector<Transaction> block = {
      T(0, {Op::Read("a")}),
      T(1, {Op::Write("a", "x")}),
  };
  auto endorsed = Endorse(nullptr, block, &pool);
  auto g = BuildConflictGraph(endorsed);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g[0], std::vector<size_t>{1});
  EXPECT_TRUE(g[1].empty());
}

TEST(ReorderTest, AcyclicBlockKeepsEverything) {
  ThreadPool pool(2);
  std::vector<Transaction> block = {
      T(0, {Op::Write("a", "x")}),          // writer of a
      T(1, {Op::Read("a"), Op::Write("b", "y")}),
      T(2, {Op::Read("b")}),
  };
  auto endorsed = Endorse(nullptr, block, &pool);
  auto plan = ReorderBlock(endorsed, false);
  EXPECT_TRUE(plan.aborted.empty());
  EXPECT_EQ(plan.order.size(), 3u);
  // Readers precede writers: 1 before 0 (t1 reads a, t0 writes a) and
  // 2 before 1.
  auto pos = [&](size_t v) {
    return std::find(plan.order.begin(), plan.order.end(), v) -
           plan.order.begin();
  };
  EXPECT_LT(pos(1), pos(0));
  EXPECT_LT(pos(2), pos(1));
}

TEST(ReorderTest, CycleAbortsWholeSccForFabricPP) {
  ThreadPool pool(2);
  // Two increments on the same key: mutual read-write conflict (cycle).
  auto endorsed = Endorse(nullptr, HotBlock(2), &pool);
  auto plan = ReorderBlock(endorsed, /*minimal_aborts=*/false);
  EXPECT_EQ(plan.aborted.size(), 2u);
  EXPECT_TRUE(plan.order.empty());
}

TEST(ReorderTest, CycleAbortsMinimalSetForFabricSharp) {
  ThreadPool pool(2);
  auto endorsed = Endorse(nullptr, HotBlock(2), &pool);
  auto plan = ReorderBlock(endorsed, /*minimal_aborts=*/true);
  EXPECT_EQ(plan.aborted.size(), 1u);
  EXPECT_EQ(plan.order.size(), 1u);
}

TEST(ReorderTest, SccComputation) {
  // 0 -> 1 -> 2 -> 0 (cycle), 3 isolated, 2 -> 3.
  std::vector<std::vector<size_t>> adj = {{1}, {2}, {0, 3}, {}};
  auto sccs = StronglyConnectedComponents(adj);
  size_t big = 0, single = 0;
  for (const auto& scc : sccs) {
    if (scc.size() == 3) {
      ++big;
    } else if (scc.size() == 1) {
      ++single;
    }
  }
  EXPECT_EQ(big, 1u);
  EXPECT_EQ(single, 1u);
}

TEST(FabricPPTest, RescuesReadersFromWriters) {
  ThreadPool pool(4);
  XovArchitecture xov(&pool);
  FabricPPArchitecture fpp(&pool);
  // Block: one writer of "a" first, many readers of "a" after. Plain
  // Fabric aborts every reader (their snapshot read of a is stale once the
  // writer commits); Fabric++ reorders readers first and commits all.
  std::vector<Transaction> block;
  block.push_back(T(0, {Op::Write("a", "new")}));
  for (int i = 1; i <= 9; ++i) {
    block.push_back(
        T(i, {Op::Read("a"), Op::Write("out" + std::to_string(i), "x")}));
  }
  xov.ProcessBlock(block);
  fpp.ProcessBlock(block);
  EXPECT_EQ(xov.stats().committed, 1u);
  EXPECT_EQ(xov.stats().aborted, 9u);
  EXPECT_EQ(fpp.stats().committed, 10u);
  EXPECT_EQ(fpp.stats().aborted, 0u);
}

TEST(FabricSharpTest, FewerAbortsThanFabricPPUnderContention) {
  ThreadPool pool(4);
  FabricPPArchitecture fpp(&pool);
  FabricSharpArchitecture fsharp(&pool);
  Rng rng(3);
  uint64_t txn_id = 0;
  for (int b = 0; b < 10; ++b) {
    std::vector<Transaction> block;
    for (int i = 0; i < 20; ++i) {
      std::string k = "hot" + std::to_string(rng.NextU64(3));
      block.push_back(T(txn_id++, {Op::Increment(k, 1)}));
    }
    fpp.ProcessBlock(block);
    fsharp.ProcessBlock(block);
  }
  EXPECT_LT(fsharp.stats().aborted + fsharp.stats().early_aborted,
            fpp.stats().aborted + fpp.stats().early_aborted);
  EXPECT_GT(fsharp.stats().committed, fpp.stats().committed);
}

TEST(FabricSharpTest, EarlyFilterCatchesCrossBlockStaleness) {
  ThreadPool pool(2);
  FabricSharpArchitecture fsharp(&pool);
  fsharp.ProcessBlock({T(1, {Op::Write("k", "v1")})});
  // Stale read is impossible here (endorsement is per block), so simulate
  // staleness with an intra-block pattern FabricSharp early-filters:
  // nothing is stale at entry, so early_aborted stays 0; but a second
  // block whose transactions read a key written in that same second block
  // cannot be early-filtered. Verify early filter fires on genuinely stale
  // reads by endorsing against an old snapshot via two conflicting blocks.
  fsharp.ProcessBlock({T(2, {Op::Increment("k2", 1)}),
                       T(3, {Op::Increment("k2", 1)})});
  // One of t2/t3 aborted (cycle), none early (state was fresh).
  EXPECT_EQ(fsharp.stats().early_aborted, 0u);
  EXPECT_EQ(fsharp.stats().aborted, 1u);
}

TEST(ArchStatsTest, OxiiRecordsGraphMetrics) {
  ThreadPool pool(4);
  OxiiArchitecture oxii(&pool);
  oxii.ProcessBlock(HotBlock(5));
  EXPECT_GT(oxii.stats().dag_edges, 0u);
  EXPECT_EQ(oxii.stats().dag_levels, 5u);  // fully serialized chain
  oxii.ProcessBlock(DisjointBlock(5, 100));
  EXPECT_EQ(oxii.stats().dag_levels, 6u);  // disjoint block adds 1 level
}

// Property: on random workloads, XOV and FastFabric agree; OXII and XOX
// agree with OX; FabricSharp never commits fewer than Fabric++.
class ArchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArchPropertyTest, CrossArchitectureInvariants) {
  Rng rng(GetParam());
  ThreadPool pool(4);
  OxArchitecture ox(&pool);
  OxiiArchitecture oxii(&pool);
  XovArchitecture xov(&pool);
  FastFabricArchitecture ff(&pool);
  XoxArchitecture xox(&pool);
  FabricPPArchitecture fpp(&pool);
  FabricSharpArchitecture fsharp(&pool);

  XoxArchitecture xox2(&pool);  // determinism witness

  uint64_t txn_id = 0;
  uint64_t total_txns = 0;
  for (int b = 0; b < 6; ++b) {
    std::vector<Transaction> block;
    int n = 10 + rng.NextU64(20);
    for (int i = 0; i < n; ++i) {
      std::string k = "k" + std::to_string(rng.NextU64(10));
      std::string k2 = "k" + std::to_string(rng.NextU64(10));
      switch (rng.NextU64(3)) {
        case 0:
          block.push_back(T(txn_id++, {Op::Increment(k, 1)}));
          break;
        case 1:
          block.push_back(
              T(txn_id++, {Op::Read(k), Op::Write(k2 + "-m", "x")}));
          break;
        default:
          block.push_back(T(txn_id++, {Op::Write(k, "w")}));
      }
    }
    total_txns += block.size();
    for (Architecture* a : std::initializer_list<Architecture*>{
             &ox, &oxii, &xov, &ff, &xox, &xox2, &fpp, &fsharp}) {
      a->ProcessBlock(block);
    }
  }
  uint64_t seed = GetParam();
  EXPECT_TRUE(ox.store().SameLatestState(oxii.store())) << seed;
  // XOX never aborts (it re-executes) and is deterministic across
  // replicas; its serial-equivalent order moves re-executed transactions
  // after the block's valid ones, so it need not equal OX's block order.
  EXPECT_EQ(xox.stats().committed, total_txns) << seed;
  EXPECT_EQ(xox.stats().aborted, 0u) << seed;
  EXPECT_TRUE(xox.store().SameLatestState(xox2.store())) << seed;
  EXPECT_TRUE(xox.chain().SameAs(xox2.chain())) << seed;
  EXPECT_EQ(xov.stats().committed, ff.stats().committed) << seed;
  EXPECT_TRUE(xov.store().SameLatestState(ff.store())) << seed;
  EXPECT_GE(fsharp.stats().committed, fpp.stats().committed) << seed;
  EXPECT_GE(fpp.stats().committed, xov.stats().committed) << seed;
  // Everyone's ledgers must audit clean.
  for (Architecture* a : std::initializer_list<Architecture*>{
           &ox, &oxii, &xov, &ff, &xox, &fpp, &fsharp}) {
    EXPECT_TRUE(a->chain().Audit().ok()) << a->name() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{15}));

// ---------------------------------------------------------------------------
// The explicit snapshot/commit boundary (block::GateAndCommit).
// ---------------------------------------------------------------------------

// Regression pin for the intra-block conflict semantics shared by the
// whole XOV family: endorsement sees ONLY the pre-block snapshot, the
// serial gate re-reads committed state at each txn's turn. A reader of a
// key an earlier valid txn wrote must abort under block order (XOV,
// FastFabric) and must be SAVED by a reorder plan that gates the reader
// first (Fabric++/FabricSharp) — both behaviours flow through the same
// block::GateAndCommit, just with different orders.
TEST(SnapshotBoundaryTest, IntraBlockConflictPinnedAcrossValidators) {
  std::vector<Transaction> block = {
      T(1, {Op::Write("k", "v1")}),
      T(2, {Op::Read("k"), Op::Write("out", "x")}),
  };
  ThreadPool pool(4);

  XovArchitecture xov(&pool);
  xov.ProcessBlock(block);
  EXPECT_EQ(xov.stats().committed, 1u);
  EXPECT_EQ(xov.stats().aborted, 1u);
  EXPECT_FALSE(xov.store().Get("out").ok());

  FastFabricArchitecture ff(&pool);
  ff.ProcessBlock(block);
  EXPECT_EQ(ff.stats().committed, 1u);
  EXPECT_EQ(ff.stats().aborted, 1u);
  EXPECT_TRUE(ff.store().SameLatestState(xov.store()));

  FabricPPArchitecture fpp(&pool);
  fpp.ProcessBlock(block);
  EXPECT_EQ(fpp.stats().committed, 2u);  // reader gated before the writer
  EXPECT_EQ(fpp.stats().aborted, 0u);
  EXPECT_EQ(fpp.store().Get("out").ValueOrDie().value, "x");

  FabricSharpArchitecture fsharp(&pool);
  fsharp.ProcessBlock(block);
  EXPECT_EQ(fsharp.stats().committed, 2u);
  EXPECT_TRUE(fsharp.store().SameLatestState(fpp.store()));
}

// Architectures consume consensus-ordered ledger::Block bodies directly.
TEST(SnapshotBoundaryTest, ProcessBlockAcceptsLedgerBlockBodies) {
  ThreadPool pool(2);
  XovArchitecture xov(&pool);
  ledger::Block body = ledger::Block::Make(
      0, crypto::Hash256{}, DisjointBlock(5), /*timestamp_us=*/7);
  xov.ProcessBlock(body);
  EXPECT_EQ(xov.stats().committed, 5u);
  EXPECT_EQ(xov.chain().height(), 1u);
}

}  // namespace
}  // namespace pbc::arch
