// Protocol-specific safety-rule tests: the fine print that distinguishes
// the consensus protocols from one another.
#include <gtest/gtest.h>

#include "consensus/cluster.h"
#include "consensus/hotstuff.h"
#include "consensus/pbft.h"
#include "consensus/tendermint.h"

namespace pbc::consensus {
namespace {

constexpr sim::Time kMaxSimTime = 120'000'000;

struct World {
  explicit World(uint64_t seed) : sim(seed), net(&sim) {
    net.SetDefaultLatency({500, 200});
  }
  sim::Simulator sim;
  sim::Network net;
  crypto::KeyRegistry registry;
};

// --- HotStuff specifics -----------------------------------------------------

TEST(HotStuffDetailTest, CommitRequiresThreeChain) {
  // With only two replicas responding after the first proposal, no QC can
  // form (n-f = 3 of 4 needed), so nothing may ever commit.
  World w(1);
  Cluster<HotStuffReplica> cluster(&w.net, &w.registry, 4);
  w.net.Start();
  w.net.Crash(2);
  w.net.Crash(3);  // two of four down: below quorum
  for (int i = 0; i < 5; ++i) cluster.Submit(MakeKvTxn(i + 1, "k", "v"));
  w.sim.Run(30'000'000);
  EXPECT_EQ(cluster.MaxCommitted(), 0u);
}

TEST(HotStuffDetailTest, RecoversWhenQuorumRestored) {
  World w(2);
  Cluster<HotStuffReplica> cluster(&w.net, &w.registry, 4);
  w.net.Start();
  w.net.Crash(2);
  w.net.Crash(3);
  for (int i = 0; i < 5; ++i) cluster.Submit(MakeKvTxn(i + 1, "k", "v"));
  w.sim.Run(10'000'000);
  ASSERT_EQ(cluster.MaxCommitted(), 0u);
  w.net.Recover(3);  // back to 3 live replicas = quorum
  ASSERT_TRUE(w.sim.RunUntil(
      [&] { return cluster.MinCommitted({2}) >= 5; }, kMaxSimTime));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

// --- Tendermint specifics ----------------------------------------------------

TEST(TendermintDetailTest, EquivocatingProposerCannotSplitDecision) {
  // The proposer sends different batches to each half. With equal voting
  // power neither half can reach +2/3 prevotes for its value, so the
  // round nil-precommits and a later (honest) proposer decides. Safety:
  // no two honest validators ever commit different blocks at a height.
  World w(3);
  Cluster<TendermintReplica> cluster(&w.net, &w.registry, 4);
  for (size_t i = 0; i < 4; ++i) {
    cluster.replica(i)->set_byzantine_mode(
        i == 1 ? ByzantineMode::kEquivocate : ByzantineMode::kHonest);
  }
  w.net.Start();
  for (int i = 0; i < 10; ++i) cluster.Submit(MakeKvTxn(i + 1, "k", "v"));
  ASSERT_TRUE(w.sim.RunUntil(
      [&] { return cluster.MinCommitted({1}) >= 10; }, kMaxSimTime));
  w.sim.Run(w.sim.now() + 3'000'000);
  EXPECT_TRUE(cluster.ChainsConsistent());
  // No forged fork transaction committed anywhere.
  for (size_t i = 0; i < 4; ++i) {
    if (i == 1) continue;
    for (const auto& block : cluster.replica(i)->chain().blocks()) {
      for (const auto& t : block.txns) {
        EXPECT_LT(t.id, 0xE000000000000ULL);
      }
    }
  }
}

TEST(TendermintDetailTest, MajorityPowerValidatorAloneCannotBeStopped) {
  // A validator with > 2/3 of the power is a one-node quorum; even with
  // every other validator crashed it keeps committing (the flip side of
  // WeightedQuorumRespectsVotingPower).
  World w(4);
  ClusterConfig cfg;
  cfg.voting_power = {9, 1, 1, 1};  // 9 > (2/3)·12
  Cluster<TendermintReplica> cluster(&w.net, &w.registry, 4, cfg);
  w.net.Start();
  w.net.Crash(1);
  w.net.Crash(2);
  w.net.Crash(3);
  for (int i = 0; i < 5; ++i) cluster.Submit(MakeKvTxn(i + 1, "k", "v"));
  ASSERT_TRUE(w.sim.RunUntil(
      [&] { return cluster.replica(0)->committed_txns() >= 5; },
      kMaxSimTime));
  EXPECT_GE(cluster.replica(0)->height(), 2u);
}

// --- PBFT specifics -----------------------------------------------------------

TEST(PbftDetailTest, WindowBoundsOutstandingSequences) {
  // With batch_size 1 and hundreds of txns, the pipeline must respect the
  // watermark window and still drain completely.
  World w(5);
  ClusterConfig cfg;
  cfg.batch_size = 1;
  Cluster<PbftReplica> cluster(&w.net, &w.registry, 4, cfg);
  w.net.Start();
  for (int i = 0; i < 300; ++i) {
    cluster.Submit(MakeKvTxn(i + 1, "k" + std::to_string(i % 3), "v"));
  }
  ASSERT_TRUE(w.sim.RunUntil(
      [&] { return cluster.MinCommitted() >= 300; }, kMaxSimTime));
  EXPECT_TRUE(cluster.ChainsConsistent());
  // Checkpoints advanced and garbage-collected (stable > 0).
  EXPECT_GT(cluster.replica(0)->stable_checkpoint(), 0u);
}

TEST(PbftDetailTest, SuccessiveLeaderCrashesCascadeViewChanges) {
  World w(6);
  Cluster<PbftReplica> cluster(&w.net, &w.registry, 7);  // f = 2
  w.net.Start();
  for (int i = 0; i < 10; ++i) cluster.Submit(MakeKvTxn(i + 1, "k", "v"));
  // Kill the primaries of views 0 and 1 back-to-back.
  w.net.Crash(0);
  w.sim.Schedule(100'000, [&w] { w.net.Crash(1); });
  ASSERT_TRUE(w.sim.RunUntil(
      [&] { return cluster.MinCommitted({0, 1}) >= 10; }, kMaxSimTime));
  EXPECT_GE(cluster.replica(2)->view(), 2u);
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TEST(PbftDetailTest, MessageLossToleratedViaTimeouts) {
  World w(7);
  w.net.SetDropRate(0.05);  // 5% loss on every link
  Cluster<PbftReplica> cluster(&w.net, &w.registry, 4);
  w.net.Start();
  for (int i = 0; i < 20; ++i) cluster.Submit(MakeKvTxn(i + 1, "k", "v"));
  ASSERT_TRUE(w.sim.RunUntil(
      [&] { return cluster.MinCommitted() >= 20; }, kMaxSimTime));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

}  // namespace
}  // namespace pbc::consensus
