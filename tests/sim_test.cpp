#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/attested_log.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pbc::sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, TiesBreakFifo) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.Schedule(10, [&order, i] { order.push_back(i); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim(1);
  int fired = 0;
  sim.Schedule(5, [&] {
    sim.Schedule(5, [&] { fired = 1; });
  });
  sim.RunAll();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10u);
}

TEST(SimulatorTest, RunUntilPredicate) {
  Simulator sim(1);
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 100) sim.Schedule(10, tick);
  };
  sim.Schedule(10, tick);
  EXPECT_TRUE(sim.RunUntil([&] { return count >= 7; }, 1000000));
  EXPECT_EQ(count, 7);
}

TEST(SimulatorTest, RunStopsAtDeadline) {
  Simulator sim(1);
  int fired = 0;
  sim.Schedule(100, [&] { fired++; });
  sim.Schedule(200, [&] { fired++; });
  sim.Run(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 150u);
}

// --- Network ---------------------------------------------------------------

struct PingMsg : Message {
  int payload = 0;
  const char* type() const override { return "ping"; }
};

class EchoNode : public Node {
 public:
  EchoNode(NodeId id, Network* net) : Node(id, net) {}
  void OnMessage(NodeId from, const MessagePtr& msg) override {
    last_from = from;
    received.push_back(
        std::static_pointer_cast<const PingMsg>(msg)->payload);
  }
  NodeId last_from = 9999;
  std::vector<int> received;
};

std::shared_ptr<PingMsg> Ping(int v) {
  auto m = std::make_shared<PingMsg>();
  m->payload = v;
  return m;
}

TEST(NetworkTest, DeliversWithLatency) {
  Simulator sim(1);
  Network net(&sim);
  net.SetDefaultLatency({100, 0});
  EchoNode a(0, &net), b(1, &net);
  net.Send(0, 1, Ping(42));
  sim.RunAll();
  EXPECT_EQ(b.received, std::vector<int>{42});
  EXPECT_EQ(b.last_from, 0u);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(NetworkTest, CrashedNodeReceivesNothing) {
  Simulator sim(1);
  Network net(&sim);
  EchoNode a(0, &net), b(1, &net);
  net.Crash(1);
  net.Send(0, 1, Ping(1));
  sim.RunAll();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST(NetworkTest, CrashAfterSendBeforeDeliveryDrops) {
  Simulator sim(1);
  Network net(&sim);
  net.SetDefaultLatency({100, 0});
  EchoNode a(0, &net), b(1, &net);
  net.Send(0, 1, Ping(1));
  sim.Schedule(50, [&] { net.Crash(1); });
  sim.RunAll();
  EXPECT_TRUE(b.received.empty());
}

TEST(NetworkTest, RecoveredNodeReceivesAgain) {
  Simulator sim(1);
  Network net(&sim);
  EchoNode a(0, &net), b(1, &net);
  net.Crash(1);
  net.Send(0, 1, Ping(1));
  sim.RunAll();
  net.Recover(1);
  net.Send(0, 1, Ping(2));
  sim.RunAll();
  EXPECT_EQ(b.received, std::vector<int>{2});
}

TEST(NetworkTest, PartitionBlocksCrossGroupTraffic) {
  Simulator sim(1);
  Network net(&sim);
  EchoNode a(0, &net), b(1, &net), c(2, &net);
  net.Partition({{0, 1}, {2}});
  net.Send(0, 1, Ping(1));  // same group: delivered
  net.Send(0, 2, Ping(2));  // cross group: dropped
  sim.RunAll();
  EXPECT_EQ(b.received, std::vector<int>{1});
  EXPECT_TRUE(c.received.empty());
  net.Heal();
  net.Send(0, 2, Ping(3));
  sim.RunAll();
  EXPECT_EQ(c.received, std::vector<int>{3});
}

TEST(NetworkTest, DropRateDropsRoughlyThatFraction) {
  Simulator sim(99);
  Network net(&sim);
  net.SetDropRate(0.5);
  EchoNode a(0, &net), b(1, &net);
  for (int i = 0; i < 1000; ++i) net.Send(0, 1, Ping(i));
  sim.RunAll();
  EXPECT_NEAR(static_cast<double>(b.received.size()), 500.0, 100.0);
}

TEST(NetworkTest, PerLinkLatencyOverride) {
  Simulator sim(1);
  Network net(&sim);
  net.SetDefaultLatency({10, 0});
  net.SetLinkLatency(0, 2, {1000, 0});
  EchoNode a(0, &net), b(1, &net), c(2, &net);
  net.Send(0, 1, Ping(1));
  net.Send(0, 2, Ping(2));
  sim.Run(100);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(c.received.empty());
  sim.RunAll();
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(NetworkTest, StatsCountTraffic) {
  Simulator sim(1);
  Network net(&sim);
  EchoNode a(0, &net), b(1, &net);
  for (int i = 0; i < 10; ++i) net.Send(0, 1, Ping(i));
  sim.RunAll();
  EXPECT_EQ(net.stats().messages_sent, 10u);
  EXPECT_EQ(net.stats().messages_delivered, 10u);
  EXPECT_GT(net.stats().bytes_sent, 0u);
}

TEST(NetworkTest, TimersSkipCrashedNodes) {
  Simulator sim(1);
  Network net(&sim);
  EchoNode a(0, &net);
  int fired = 0;
  a.SetTimer(100, [&] { fired++; });
  net.Crash(0);
  sim.RunAll();
  EXPECT_EQ(fired, 0);
}

TEST(NetworkTest, IdenticalSeedsProduceIdenticalTraceAndMetricsBytes) {
  // Regression for the detlint `unordered-iter` rule (DESIGN.md §10):
  // Network::Start() used to walk an unordered_map, so the OnStart — and
  // therefore first-send — order depended on heap addresses and could
  // differ between two runs of the *same seed* within one process. The
  // trace and metrics dumps are the byte-level observables the seed-sweep
  // reports are built from, so they must match exactly.
  auto run = [](uint64_t seed) {
    obs::MetricsRegistry metrics;
    obs::TraceLog trace;
    Simulator sim(seed);
    Network net(&sim);
    sim.AttachMetrics(&metrics);
    net.AttachObs(&metrics, &trace);
    net.SetDefaultLatency({100, 50});
    net.SetDropRate(0.1);

    // Nodes that gossip on start: start order reaches message order.
    class GossipNode : public Node {
     public:
      GossipNode(NodeId id, Network* net, int fanout)
          : Node(id, net), fanout_(fanout) {}
      void OnStart() override {
        for (int i = 0; i < fanout_; ++i) {
          Send((id() + 1 + static_cast<NodeId>(i)) % 5, Ping(i));
        }
      }
      void OnMessage(NodeId, const MessagePtr&) override {
        if (!replied_) {
          replied_ = true;
          Send((id() + 1) % 5, Ping(99));
        }
      }

     private:
      int fanout_;
      bool replied_ = false;
    };

    std::vector<std::unique_ptr<GossipNode>> nodes;
    for (NodeId id = 0; id < 5; ++id) {
      nodes.push_back(std::make_unique<GossipNode>(id, &net, 2));
    }
    net.Start();
    sim.Schedule(120, [&net] { net.Crash(3); });
    sim.Schedule(400, [&net] { net.Partition({{0, 1, 2}, {3, 4}}); });
    sim.Schedule(900, [&net] {
      net.Heal();
      net.Recover(3);
    });
    sim.RunAll();
    return trace.DumpString() + "\n---\n" + metrics.DebugString();
  };
  std::string first = run(7);
  EXPECT_EQ(first, run(7));
#ifdef PBC_OBS_ENABLED
  // With instrumentation compiled in, the bytes must actually depend on
  // the seed (an empty-vs-empty comparison would prove nothing).
  EXPECT_NE(first, run(8));
  EXPECT_NE(first.find("deliver"), std::string::npos);
#endif
}

TEST(NetworkTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    Network net(&sim);
    net.SetDefaultLatency({100, 50});
    EchoNode a(0, &net), b(1, &net);
    for (int i = 0; i < 50; ++i) net.Send(0, 1, Ping(i));
    sim.RunAll();
    return b.received;
  };
  EXPECT_EQ(run(42), run(42));
}

// --- Fault-injection edge cases --------------------------------------------

TEST(NetworkTest, TimerArmedBeforeCrashNeverFiresAfterRecover) {
  // Regression: a timer armed pre-crash used to fire if the node recovered
  // before its deadline, resurrecting stale protocol state. Crash epochs
  // cancel it permanently.
  Simulator sim(1);
  Network net(&sim);
  EchoNode a(0, &net);
  int fired = 0;
  a.SetTimer(100, [&] { fired++; });
  sim.Schedule(10, [&] { net.Crash(0); });
  sim.Schedule(20, [&] { net.Recover(0); });
  sim.RunAll();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(net.CrashEpoch(0), 1u);
}

TEST(NetworkTest, TimerArmedAfterRecoverFires) {
  Simulator sim(1);
  Network net(&sim);
  EchoNode a(0, &net);
  int fired = 0;
  net.Crash(0);
  net.Recover(0);
  a.SetTimer(100, [&] { fired++; });
  sim.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(NetworkTest, TimerSpanningTwoCrashEpochsStaysDead) {
  // Crash-recover-crash-recover: a timer from epoch 0 must not fire in
  // epoch 2 either.
  Simulator sim(1);
  Network net(&sim);
  EchoNode a(0, &net);
  int fired = 0;
  a.SetTimer(200, [&] { fired++; });
  sim.Schedule(10, [&] { net.Crash(0); });
  sim.Schedule(20, [&] { net.Recover(0); });
  sim.Schedule(30, [&] { net.Crash(0); });
  sim.Schedule(40, [&] { net.Recover(0); });
  sim.RunAll();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(net.CrashEpoch(0), 2u);
}

TEST(NetworkTest, PartitionDropsInFlightCrossGroupMessage) {
  // A message sent before the partition but still on the wire when the
  // cut happens must be dropped, not delivered late.
  Simulator sim(1);
  Network net(&sim);
  net.SetDefaultLatency({100, 0});
  EchoNode a(0, &net), b(1, &net);
  net.Send(0, 1, Ping(1));
  sim.Schedule(50, [&] { net.Partition({{0}, {1}}); });
  sim.RunAll();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST(NetworkTest, HealDoesNotResurrectInFlightMessage) {
  // Partition cuts the wire; healing before the scheduled delivery time
  // must not bring the datagram back.
  Simulator sim(1);
  Network net(&sim);
  net.SetDefaultLatency({100, 0});
  EchoNode a(0, &net), b(1, &net);
  net.Send(0, 1, Ping(1));
  sim.Schedule(30, [&] { net.Partition({{0}, {1}}); });
  sim.Schedule(60, [&] { net.Heal(); });
  sim.RunAll();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  // Fresh traffic after the heal flows normally.
  net.Send(0, 1, Ping(2));
  sim.RunAll();
  EXPECT_EQ(b.received, std::vector<int>{2});
}

TEST(NetworkTest, InFlightWithinGroupSurvivesPartition) {
  Simulator sim(1);
  Network net(&sim);
  net.SetDefaultLatency({100, 0});
  EchoNode a(0, &net), b(1, &net), c(2, &net);
  net.Send(0, 1, Ping(1));  // same group once partitioned
  sim.Schedule(50, [&] { net.Partition({{0, 1}, {2}}); });
  sim.RunAll();
  EXPECT_EQ(b.received, std::vector<int>{1});
}

TEST(NetworkTest, SetLinkLatencyIsSymmetric) {
  // Regression: SetLinkLatency(a, b) used to install only the a→b
  // direction, so "WAN" benches accidentally modelled asymmetric links.
  Simulator sim(1);
  Network net(&sim);
  net.SetDefaultLatency({10, 0});
  net.SetLinkLatency(0, 1, {1000, 0});
  EchoNode a(0, &net), b(1, &net);
  net.Send(0, 1, Ping(1));
  net.Send(1, 0, Ping(2));
  sim.Run(500);
  EXPECT_TRUE(a.received.empty());  // reverse direction is also slow
  EXPECT_TRUE(b.received.empty());
  sim.RunAll();
  EXPECT_EQ(a.received, std::vector<int>{2});
  EXPECT_EQ(b.received, std::vector<int>{1});
  EXPECT_EQ(sim.now(), 1000u);
}

TEST(NetworkTest, DirectionalLatencyOverridesOneDirection) {
  Simulator sim(1);
  Network net(&sim);
  net.SetDefaultLatency({10, 0});
  net.SetLinkLatency(0, 1, {1000, 0});
  net.SetDirectionalLinkLatency(1, 0, {50, 0});  // fast downlink only
  EchoNode a(0, &net), b(1, &net);
  net.Send(0, 1, Ping(1));
  net.Send(1, 0, Ping(2));
  sim.Run(100);
  EXPECT_EQ(a.received, std::vector<int>{2});  // 50us direction
  EXPECT_TRUE(b.received.empty());             // still 1000us
  sim.RunAll();
  EXPECT_EQ(b.received, std::vector<int>{1});
}

// --- Attested log ----------------------------------------------------------

TEST(AttestedLogTest, AttestAndVerify) {
  crypto::KeyRegistry registry;
  AttestedLog log(1, registry.Register(1));
  auto digest = crypto::Sha256::Digest(std::string("msg"));
  auto att = log.Attest(5, digest);
  ASSERT_TRUE(att.ok());
  EXPECT_TRUE(AttestedLog::Verify(registry, att.ValueOrDie()));
}

TEST(AttestedLogTest, EquivocationRefused) {
  crypto::KeyRegistry registry;
  AttestedLog log(1, registry.Register(1));
  auto d1 = crypto::Sha256::Digest(std::string("msg-to-alice"));
  auto d2 = crypto::Sha256::Digest(std::string("msg-to-bob"));
  ASSERT_TRUE(log.Attest(5, d1).ok());
  auto second = log.Attest(5, d2);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
}

TEST(AttestedLogTest, ReattestSameDigestIdempotent) {
  crypto::KeyRegistry registry;
  AttestedLog log(1, registry.Register(1));
  auto d = crypto::Sha256::Digest(std::string("msg"));
  ASSERT_TRUE(log.Attest(5, d).ok());
  EXPECT_TRUE(log.Attest(5, d).ok());
  EXPECT_EQ(log.size(), 1u);
}

TEST(AttestedLogTest, ForgedAttestationFailsVerification) {
  crypto::KeyRegistry registry;
  AttestedLog log(1, registry.Register(1));
  registry.Register(2);
  auto att = log.Attest(1, crypto::Sha256::Digest(std::string("m")))
                 .ValueOrDie();
  att.log_id = 2;  // claim it came from node 2's TEE
  EXPECT_FALSE(AttestedLog::Verify(registry, att));
  auto att2 = log.Attest(2, crypto::Sha256::Digest(std::string("m2")))
                  .ValueOrDie();
  att2.sequence = 3;  // replay at a different slot
  EXPECT_FALSE(AttestedLog::Verify(registry, att2));
}

}  // namespace
}  // namespace pbc::sim
