#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "txn/dependency_graph.h"
#include "txn/executor.h"
#include "txn/transaction.h"

namespace pbc::txn {
namespace {

Transaction MakeTxn(TxnId id, std::vector<Op> ops) {
  Transaction t;
  t.id = id;
  t.ops = std::move(ops);
  return t;
}

TEST(TransactionTest, DeclaredAccessSets) {
  Transaction t = MakeTxn(1, {Op::Read("r"), Op::Write("w", "v"),
                              Op::Increment("i", 1),
                              Op::Transfer("src", "dst", 5)});
  auto reads = t.DeclaredReads();
  auto writes = t.DeclaredWrites();
  EXPECT_EQ(reads, (std::vector<store::Key>{"dst", "i", "r", "src"}));
  EXPECT_EQ(writes, (std::vector<store::Key>{"dst", "i", "src", "w"}));
}

TEST(TransactionTest, ComputeOpHasNoDataAccess) {
  Transaction t = MakeTxn(1, {Op::Compute(10)});
  EXPECT_TRUE(t.DeclaredReads().empty());
  EXPECT_TRUE(t.DeclaredWrites().empty());
}

TEST(TransactionTest, DigestSensitiveToContent) {
  Transaction a = MakeTxn(1, {Op::Write("k", "v")});
  Transaction b = MakeTxn(1, {Op::Write("k", "w")});
  Transaction c = MakeTxn(2, {Op::Write("k", "v")});
  EXPECT_NE(a.Digest(), b.Digest());
  EXPECT_NE(a.Digest(), c.Digest());
  EXPECT_EQ(a.Digest(), MakeTxn(1, {Op::Write("k", "v")}).Digest());
}

TEST(ExecuteTest, WriteProducesWriteSet) {
  store::KvStore store;
  auto r = Execute(MakeTxn(1, {Op::Write("k", "v")}), LatestReader(&store));
  ASSERT_EQ(r.writes.size(), 1u);
  EXPECT_EQ(r.writes.writes()[0].key, "k");
  EXPECT_EQ(r.writes.writes()[0].value, "v");
  EXPECT_TRUE(r.reads.empty());
}

TEST(ExecuteTest, ReadRecordsObservedVersion) {
  store::KvStore store;
  store::WriteBatch b;
  b.Put("k", "v");
  store.ApplyBatch(b, 7);
  auto r = Execute(MakeTxn(1, {Op::Read("k"), Op::Read("missing")}),
                   LatestReader(&store));
  ASSERT_EQ(r.reads.size(), 2u);
  EXPECT_EQ(r.reads[0].version, 7u);
  EXPECT_EQ(r.reads[1].version, store::kNeverWritten);
}

TEST(ExecuteTest, IncrementReadsModifiesWrites) {
  store::KvStore store;
  store::WriteBatch b;
  b.Put("ctr", EncodeInt(10));
  store.ApplyBatch(b, 1);
  auto r = Execute(MakeTxn(1, {Op::Increment("ctr", 5)}),
                   LatestReader(&store));
  ASSERT_EQ(r.writes.size(), 1u);
  EXPECT_EQ(DecodeInt(r.writes.writes()[0].value), 15);
  ASSERT_EQ(r.reads.size(), 1u);
}

TEST(ExecuteTest, IncrementOfMissingKeyStartsAtZero) {
  store::KvStore store;
  auto r = Execute(MakeTxn(1, {Op::Increment("new", 3)}),
                   LatestReader(&store));
  EXPECT_EQ(DecodeInt(r.writes.writes()[0].value), 3);
}

TEST(ExecuteTest, GuardedTransferMovesFundsWhenSufficient) {
  store::KvStore store;
  store::WriteBatch b;
  b.Put("alice", EncodeInt(100));
  store.ApplyBatch(b, 1);
  auto r = Execute(MakeTxn(1, {Op::Transfer("alice", "bob", 30)}),
                   LatestReader(&store));
  ASSERT_EQ(r.writes.size(), 2u);
  store.ApplyBatch(r.writes, 2);
  EXPECT_EQ(DecodeInt(store.Get("alice").ValueOrDie().value), 70);
  EXPECT_EQ(DecodeInt(store.Get("bob").ValueOrDie().value), 30);
}

TEST(ExecuteTest, GuardedTransferNoOpWhenInsufficient) {
  store::KvStore store;
  store::WriteBatch b;
  b.Put("alice", EncodeInt(10));
  store.ApplyBatch(b, 1);
  auto r = Execute(MakeTxn(1, {Op::Transfer("alice", "bob", 30)}),
                   LatestReader(&store));
  EXPECT_TRUE(r.writes.empty());
  EXPECT_EQ(r.reads.size(), 2u);  // reads still recorded
}

TEST(ExecuteTest, ReadYourOwnWrites) {
  store::KvStore store;
  auto r = Execute(MakeTxn(1, {Op::Write("k", EncodeInt(5)),
                               Op::Increment("k", 1)}),
                   LatestReader(&store));
  // Increment sees the in-transaction write of 5, producing 6.
  bool found = false;
  for (const auto& w : r.writes.writes()) {
    if (w.key == "k") {
      EXPECT_EQ(DecodeInt(w.value), 6);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(r.writes.size(), 1u);  // deduplicated
}

TEST(ExecuteTest, ComputeBurnsRounds) {
  store::KvStore store;
  auto r = Execute(MakeTxn(1, {Op::Compute(100)}), LatestReader(&store));
  EXPECT_GE(r.compute_rounds, 100);
  EXPECT_TRUE(r.writes.empty());
}

TEST(ExecuteTest, SnapshotReaderIgnoresLaterWrites) {
  store::KvStore store;
  store::WriteBatch b1;
  b1.Put("k", "old");
  store.ApplyBatch(b1, 1);
  store::WriteBatch b2;
  b2.Put("k", "new");
  store.ApplyBatch(b2, 2);
  auto r = Execute(MakeTxn(1, {Op::Read("k"), Op::Increment("mirror", 0)}),
                   SnapshotReader(&store, 1));
  EXPECT_EQ(r.reads[0].version, 1u);
}

// --- DependencyGraph --------------------------------------------------------

TEST(DependencyGraphTest, NoConflictsNoEdges) {
  std::vector<Transaction> txns = {
      MakeTxn(1, {Op::Write("a", "1")}),
      MakeTxn(2, {Op::Write("b", "2")}),
      MakeTxn(3, {Op::Read("c")}),
  };
  auto g = DependencyGraph::Build(txns);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.Levels().size(), 1u);
  EXPECT_EQ(g.Levels()[0].size(), 3u);
}

TEST(DependencyGraphTest, WriteReadConflictMakesEdge) {
  std::vector<Transaction> txns = {
      MakeTxn(1, {Op::Write("k", "1")}),
      MakeTxn(2, {Op::Read("k")}),
  };
  auto g = DependencyGraph::Build(txns);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Successors(0), std::vector<size_t>{1});
  EXPECT_EQ(g.InDegree(1), 1u);
}

TEST(DependencyGraphTest, ReadReadIsNotConflict) {
  std::vector<Transaction> txns = {
      MakeTxn(1, {Op::Read("k")}),
      MakeTxn(2, {Op::Read("k")}),
  };
  EXPECT_EQ(DependencyGraph::Build(txns).num_edges(), 0u);
}

TEST(DependencyGraphTest, WriteWriteConflict) {
  std::vector<Transaction> txns = {
      MakeTxn(1, {Op::Write("k", "1")}),
      MakeTxn(2, {Op::Write("k", "2")}),
  };
  EXPECT_EQ(DependencyGraph::Build(txns).num_edges(), 1u);
}

TEST(DependencyGraphTest, ChainOfIncrementsFullySerializes) {
  std::vector<Transaction> txns;
  for (int i = 0; i < 5; ++i) {
    txns.push_back(MakeTxn(i, {Op::Increment("hot", 1)}));
  }
  auto g = DependencyGraph::Build(txns);
  EXPECT_EQ(g.Levels().size(), 5u);
  EXPECT_EQ(g.CriticalPathLength(), 5u);
}

TEST(DependencyGraphTest, LevelsRespectDependencies) {
  // t0 writes a; t1 reads a, writes b; t2 reads b; t3 independent.
  std::vector<Transaction> txns = {
      MakeTxn(0, {Op::Write("a", "1")}),
      MakeTxn(1, {Op::Read("a"), Op::Write("b", "2")}),
      MakeTxn(2, {Op::Read("b")}),
      MakeTxn(3, {Op::Write("z", "9")}),
  };
  auto levels = DependencyGraph::Build(txns).Levels();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0], (std::vector<size_t>{0, 3}));
  EXPECT_EQ(levels[1], std::vector<size_t>{1});
  EXPECT_EQ(levels[2], std::vector<size_t>{2});
}

// --- Executors ---------------------------------------------------------------

std::vector<Transaction> MixedBlock() {
  std::vector<Transaction> txns;
  // Independent increments on 8 keys plus a conflicting chain on "hot".
  for (int i = 0; i < 8; ++i) {
    txns.push_back(
        MakeTxn(i, {Op::Increment("key" + std::to_string(i), i + 1)}));
  }
  for (int i = 0; i < 4; ++i) {
    txns.push_back(MakeTxn(100 + i, {Op::Increment("hot", 1)}));
  }
  txns.push_back(MakeTxn(200, {Op::Transfer("key0", "key1", 1)}));
  return txns;
}

TEST(ExecutorTest, SerialAndDagProduceIdenticalState) {
  auto txns = MixedBlock();
  store::KvStore serial_store, dag_store;
  store::WriteBatch init;
  init.Put("key0", EncodeInt(100));
  serial_store.ApplyBatch(init, 1);
  dag_store.ApplyBatch(init, 1);

  ExecuteSerial(txns, &serial_store);

  ThreadPool pool(4);
  auto graph = DependencyGraph::Build(txns);
  ExecuteDag(txns, graph, &pool, &dag_store);

  EXPECT_TRUE(serial_store.SameLatestState(dag_store));
  EXPECT_EQ(DecodeInt(dag_store.Get("hot").ValueOrDie().value), 4);
}

TEST(ExecutorTest, DagUsesFewerLevelsThanTxns) {
  auto txns = MixedBlock();
  auto graph = DependencyGraph::Build(txns);
  ThreadPool pool(4);
  store::KvStore store;
  auto stats = ExecuteDag(txns, graph, &pool, &store);
  EXPECT_EQ(stats.executed, txns.size());
  EXPECT_LT(stats.levels, txns.size());
}

TEST(ExecutorTest, SerialStatsCountEverything) {
  auto txns = MixedBlock();
  store::KvStore store;
  auto stats = ExecuteSerial(txns, &store);
  EXPECT_EQ(stats.executed, txns.size());
}

TEST(ExecutorTest, EmptyBlockIsFine) {
  store::KvStore store;
  ThreadPool pool(2);
  std::vector<Transaction> empty;
  auto graph = DependencyGraph::Build(empty);
  EXPECT_EQ(ExecuteSerial(empty, &store).executed, 0u);
  EXPECT_EQ(ExecuteDag(empty, graph, &pool, &store).executed, 0u);
}

// Property: for random blocks, DAG execution always matches serial.
class DagEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DagEquivalenceTest, MatchesSerialOnRandomBlocks) {
  Rng rng(GetParam());
  std::vector<Transaction> txns;
  const int kKeys = 12;
  for (int i = 0; i < 40; ++i) {
    std::vector<Op> ops;
    int nops = 1 + rng.NextU64(3);
    for (int j = 0; j < nops; ++j) {
      std::string k = "k" + std::to_string(rng.NextU64(kKeys));
      switch (rng.NextU64(4)) {
        case 0:
          ops.push_back(Op::Read(k));
          break;
        case 1:
          ops.push_back(Op::Write(k, EncodeInt(rng.NextU64(100))));
          break;
        case 2:
          ops.push_back(Op::Increment(k, 1 + rng.NextU64(5)));
          break;
        default:
          ops.push_back(Op::Transfer(
              k, "k" + std::to_string(rng.NextU64(kKeys)), rng.NextU64(50)));
      }
    }
    txns.push_back(MakeTxn(i, std::move(ops)));
  }

  store::KvStore s1, s2;
  store::WriteBatch init;
  for (int i = 0; i < kKeys; ++i) {
    init.Put("k" + std::to_string(i), EncodeInt(50));
  }
  s1.ApplyBatch(init, 1);
  s2.ApplyBatch(init, 1);

  ExecuteSerial(txns, &s1);
  ThreadPool pool(4);
  ExecuteDag(txns, DependencyGraph::Build(txns), &pool, &s2);
  EXPECT_TRUE(s1.SameLatestState(s2)) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagEquivalenceTest,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

}  // namespace
}  // namespace pbc::txn
